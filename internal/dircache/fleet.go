package dircache

import (
	"sort"
	"time"

	"partialtor/internal/chain"
	"partialtor/internal/client"
	"partialtor/internal/obs"
	"partialtor/internal/sig"
	"partialtor/internal/simnet"
	"partialtor/internal/topo"
)

// CoveragePoint is one step of a coverage curve. In a fleet's local curve
// Count is the clients that completed at instant At; in Result.Points the
// curves are merged and Count is the cumulative covered population. Count
// can be negative in a fleet's local curve: a verifying fleet that accepted
// the adversary's side of a fork first retracts that coverage the instant
// the fork is detected.
type CoveragePoint struct {
	At    time.Duration
	Count int
}

// digestState tracks one consensus identity a fleet has been served:
// how many of its clients accepted it (by download kind) and which caches
// served it. The cache set is what resolves a detected fork — the side
// served by fewer independent caches is treated as the adversary's.
type digestState struct {
	fulls, diffs int
	caches       map[int]bool
}

// fleetNode statistically aggregates `clients` Tor clients behind one simnet
// node. Per tick it draws Poisson fetch arrivals for every cache (thinning
// the population-wide arrival process by the cache-selection weights), asks
// each cache for the whole tick's downloads in one aggregated message, and
// counts the clients covered when the batch transfer completes. Refused
// batches (cache has no consensus yet) go into a retry pool.
//
// With Spec.VerifyClients the fleet runs the proposal-239 verifying-client
// path (client.Verifier): every received batch's chain link is checked,
// stale or forked documents are rejected, the serving cache is distrusted
// (its weight drops to zero for all later fetches), and the rejected
// clients re-enter the retry pool aimed at the remaining caches. One
// verifier serves the whole fleet — the aggregation-level analogue of every
// client checking its own chain, at one signature verification per distinct
// document.
//
// With Spec.RaceK >= 1 every batch becomes a race: the batch is requested
// from up to K caches at once, the first response wins, and laggard
// downloads are discarded client-side with their bytes charged to
// Result.RaceWasteBytes — the simulator cannot cancel an in-flight
// transfer, so the duplicate egress is the honestly measured price of
// racing. A wave that produces no response within Spec.RaceTimeout fails
// over to the next K untried caches (weight-descending order), so K=1 is a
// pure failover client and K>=2 is the drand-style optimizing client.
type fleetNode struct {
	spec    *Spec
	clients int
	caches  []simnet.NodeID
	weights []float64 // normalized, len == len(caches)
	region  topo.Region

	unrequested int // clients that have not yet issued their first fetch
	covered     int
	points      []CoveragePoint

	pendingFulls, pendingDiffs int // refused fetches awaiting retry
	retryArmed                 bool

	// retryAttempt is the backoff exponent (reset on every successful
	// delivery); retryBursts counts the bursts fired over the run;
	// retryDropped the fetches shed after a Spec.Backoff budget ran out.
	// Only retryBursts moves without a Backoff config.
	retryAttempt int
	retryBursts  int
	retryDropped int64

	failed int64 // client fetch attempts refused with a nack

	// --- verification state (nil/zero unless the run carries chain material) ---

	chainCtx *ChainContext
	verifier *client.Verifier // nil = non-verifying clients

	trust      []bool    // per-cache; false once a cache served bad data
	effWeights []float64 // weights masked by trust; nil until first distrust
	cacheIdx   map[simnet.NodeID]int

	byDigest map[sig.Digest]*digestState

	misled          int   // clients that accepted a non-genuine document
	staleRejections int64 // client downloads rejected as stale/invalid
	extraFetches    int64 // re-fetch attempts verification caused
	forkEvents      []forkEvent

	// --- racing state (nil/zero unless Spec.RaceK >= 1) ---

	races    map[int64]*raceState // live races by id; never iterated
	nextRace int64                // race ids start at 1; 0 on the wire = legacy fetch

	ranking   []int // cache indices, weight-descending, ties by index
	rankDirty bool

	raceWaste    int64 // bytes of laggard downloads discarded after a win
	raceDup      int   // laggard batches discarded
	raceTimeouts int   // waves that expired and failed over

	// Per-fleet scratch: tick and armRetry run once per Tick per fleet for
	// the whole fetch window, and without reuse each run allocates one
	// slice per cache — the distribution tier's hot-path garbage.
	counts  []int
	scratch drawScratch
}

// forkEvent is a fleet's evolving record of one detected fork: which digest
// it currently blames and the detection built from that side's cache set.
// Corroboration evidence is revisable — when the fleet re-anchors onto the
// other side of a fork it rewrites the blame — so events are finalized only
// at collect time.
type forkEvent struct {
	det    ForkDetection
	blamed sig.Digest
}

// raceState tracks one racing batch: the clients it carries, which caches
// have been asked, and how many answers are still outstanding. A finished
// race (done) lingers in the map until every outstanding answer has drained
// so laggards can be recognized and their bytes charged as racing waste.
type raceState struct {
	fulls, diffs int
	sent         int // requests issued across all waves
	answered     int // batches plus nacks received back
	nacks        int // refusals among the answers
	wave         int // guards stale wave timers
	tried        []bool
	done         bool
}

func (f *fleetNode) Start(ctx *simnet.Context) {
	f.unrequested = f.clients
	if f.chainCtx != nil {
		f.cacheIdx = make(map[simnet.NodeID]int, len(f.caches))
		for i, id := range f.caches {
			f.cacheIdx[id] = i
		}
		f.byDigest = make(map[sig.Digest]*digestState)
		if f.spec.VerifyClients {
			// Verifying clients hold the previous consensus, so they know
			// the digest the next epoch must commit to.
			f.verifier = client.NewVerifier(f.chainCtx.Pubs, f.chainCtx.Threshold,
				f.chainCtx.Genuine.Epoch, f.chainCtx.Genuine.Prev)
			f.trust = make([]bool, len(f.caches))
			for i := range f.trust {
				f.trust[i] = true
			}
		}
	}
	f.scheduleTick(ctx, 1)
}

func (f *fleetNode) numTicks() int {
	n := int((f.spec.FetchWindow + f.spec.Tick - 1) / f.spec.Tick)
	if n < 1 {
		n = 1
	}
	return n
}

func (f *fleetNode) scheduleTick(ctx *simnet.Context, k int) {
	if k > f.numTicks() {
		return
	}
	at := time.Duration(k) * f.spec.Tick
	if at > f.spec.FetchWindow {
		at = f.spec.FetchWindow
	}
	ctx.At(at, func() {
		f.tick(ctx, k)
		f.scheduleTick(ctx, k+1)
	})
}

// tickSpan returns the (start, end] interval tick k covers. Only the final
// tick can be shortened: its end is clamped to FetchWindow when Tick does
// not divide the window.
func (f *fleetNode) tickSpan(k int) (start, end time.Duration) {
	start = time.Duration(k-1) * f.spec.Tick
	end = time.Duration(k) * f.spec.Tick
	if end > f.spec.FetchWindow {
		end = f.spec.FetchWindow
	}
	return start, end
}

// curWeights returns the cache-selection weights in force: the spec's
// weights until a cache has been distrusted, the trust-masked renormalized
// copy afterwards.
func (f *fleetNode) curWeights() []float64 {
	if f.effWeights != nil {
		return f.effWeights
	}
	return f.weights
}

// trustedCaches counts caches the fleet still fetches from.
func (f *fleetNode) trustedCaches() int {
	if f.trust == nil {
		return len(f.caches)
	}
	n := 0
	for _, ok := range f.trust {
		if ok {
			n++
		}
	}
	return n
}

// distrust zeroes a cache's selection weight after it served bad directory
// data — the "fall back to the next cache" half of client-side verification.
func (f *fleetNode) distrust(cacheIdx int) {
	if f.trust == nil || !f.trust[cacheIdx] {
		return
	}
	f.trust[cacheIdx] = false
	f.recomputeWeights()
}

// retrust restores a cache the fleet wrongly condemned: fork blame is
// revised when the corroboration majority flips, and a cache whose only
// offense was serving the side that turned out genuine gets its selection
// weight back.
func (f *fleetNode) retrust(cacheIdx int) {
	if f.trust == nil || f.trust[cacheIdx] {
		return
	}
	f.trust[cacheIdx] = true
	f.recomputeWeights()
}

func (f *fleetNode) recomputeWeights() {
	masked := make([]float64, len(f.weights))
	total := 0.0
	for i, w := range f.weights {
		if f.trust[i] {
			masked[i] = w
			total += w
		}
	}
	if total > 0 {
		for i := range masked {
			masked[i] /= total
		}
	}
	f.effWeights = masked
	f.rankDirty = true
}

// cacheRanking is the failover order races walk through: caches sorted by
// current selection weight, heaviest first, index breaking ties. Cached
// until a distrust/retrust changes the weights.
func (f *fleetNode) cacheRanking() []int {
	if f.ranking != nil && !f.rankDirty {
		return f.ranking
	}
	weights := f.curWeights()
	r := f.ranking[:0]
	for i := range weights {
		r = append(r, i)
	}
	sort.SliceStable(r, func(a, b int) bool { return weights[r[a]] > weights[r[b]] })
	f.ranking = r
	f.rankDirty = false
	return r
}

// tick issues this interval's fetch arrivals: per-cache Poisson draws whose
// rate is proportional to the interval's *actual* length — the clamped
// final tick must not draw at the full-tick rate, which would over-draw
// arrivals in the shortened interval. The final tick then flushes every
// client the Poisson draws left behind, so exactly `clients` first fetches
// are issued within the window.
//
//detlint:hotpath
func (f *fleetNode) tick(ctx *simnet.Context, k int) {
	if f.unrequested == 0 {
		return
	}
	if f.trust != nil && f.trustedCaches() == 0 {
		// Nowhere honest left to fetch from: issuing the tick (or the
		// final-tick flush) would dump the remaining population onto
		// known-bad caches — splitCounts degenerates to bin 0 on an
		// all-zero weight vector — and fabricate rejection traffic.
		return
	}
	start, end := f.tickSpan(k)
	frac := float64(end-start) / float64(f.spec.FetchWindow)
	weights := f.curWeights()
	counts := intScratch(&f.counts, len(f.caches))
	total := 0
	for i, w := range weights {
		counts[i] = poisson(ctx.Rand(), float64(f.clients)*w*frac)
		total += counts[i]
	}
	if total > f.unrequested {
		// The draws exceed the remaining budget: apportion the budget over
		// the caches in proportion to their draws instead of truncating
		// whatever the low-index caches left over — a first-come clamp
		// systematically starves the high-index caches.
		counts = clampDraws(&f.scratch, counts, f.unrequested)
	} else if k == f.numTicks() {
		// Final tick: flush the clients the Poisson draws left behind.
		extra := splitCounts(&f.scratch.splitA, ctx.Rand(), f.unrequested-total, weights)
		for i := range counts {
			counts[i] += extra[i]
		}
	}
	for i, n := range counts {
		if n == 0 {
			continue
		}
		f.unrequested -= n
		diffs := binomial(ctx.Rand(), n, f.spec.DiffFraction)
		if f.spec.RaceK >= 1 {
			f.startRace(ctx, i, n-diffs, diffs)
		} else {
			ctx.Send(f.caches[i], &fleetFetch{fulls: n - diffs, diffs: diffs})
		}
	}
}

func (f *fleetNode) Deliver(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case *docBatch:
		if m.race != 0 {
			f.receiveRaceBatch(ctx, from, m)
			return
		}
		f.receiveBatch(ctx, from, m)

	case *fetchNack:
		if m.race != 0 {
			f.receiveRaceNack(ctx, m)
			return
		}
		f.failed += int64(m.fulls + m.diffs)
		f.pendingFulls += m.fulls
		f.pendingDiffs += m.diffs
		f.armRetry(ctx)
	}
}

// startRace opens a race for one batch and sends its first wave, primary
// (the weighted draw's cache) first.
func (f *fleetNode) startRace(ctx *simnet.Context, primary, fulls, diffs int) {
	if f.races == nil {
		f.races = make(map[int64]*raceState)
	}
	f.nextRace++
	id := f.nextRace
	r := &raceState{fulls: fulls, diffs: diffs, tried: make([]bool, len(f.caches))}
	f.races[id] = r
	f.sendWave(ctx, id, r, primary)
}

// sendWave asks up to RaceK untried caches for the race's batch — the
// primary first when one is given, then down the weight ranking — and arms
// the failover timer. With nobody left to ask the race is abandoned into
// the ordinary retry pool.
func (f *fleetNode) sendWave(ctx *simnet.Context, id int64, r *raceState, primary int) {
	weights := f.curWeights()
	k := f.spec.RaceK
	sent := 0
	try := func(i int) {
		if sent >= k || r.tried[i] || weights[i] <= 0 {
			return
		}
		r.tried[i] = true
		r.sent++
		sent++
		ctx.Send(f.caches[i], &fleetFetch{fulls: r.fulls, diffs: r.diffs, race: id})
	}
	if primary >= 0 {
		try(primary)
	}
	for _, i := range f.cacheRanking() {
		if sent >= k {
			break
		}
		try(i)
	}
	if sent == 0 {
		f.abandonRace(ctx, id, r)
		return
	}
	wave := r.wave
	ctx.After(f.spec.RaceTimeout, func() { f.raceTimeout(ctx, id, wave) })
}

// raceTimeout fires when a wave has produced no winner within RaceTimeout:
// fail over to the next wave of untried caches.
func (f *fleetNode) raceTimeout(ctx *simnet.Context, id int64, wave int) {
	r := f.races[id]
	if r == nil || r.done || r.wave != wave {
		return
	}
	r.wave++
	f.raceTimeouts++
	f.sendWave(ctx, id, r, -1)
}

// receiveRaceBatch settles a race on its first response — which then flows
// through the ordinary verification/acceptance path — and writes every
// later response off as racing waste.
func (f *fleetNode) receiveRaceBatch(ctx *simnet.Context, from simnet.NodeID, m *docBatch) {
	r := f.races[m.race]
	if r == nil || r.done {
		// A laggard (or a response to an abandoned race): its clients were
		// satisfied — or re-pooled — elsewhere, but the download still
		// crossed the network. That duplicate egress is the price of racing.
		f.raceDup++
		f.raceWaste += m.bytes
		if r != nil {
			r.answered++
			f.finishRace(m.race, r)
		}
		return
	}
	r.answered++
	r.done = true
	f.finishRace(m.race, r)
	f.receiveBatch(ctx, from, m)
}

// receiveRaceNack records one cache's refusal. A race only gives up when
// every request so far was refused and no untried cache remains; otherwise
// the outstanding requests or the wave timer keep it alive.
func (f *fleetNode) receiveRaceNack(ctx *simnet.Context, m *fetchNack) {
	f.failed += int64(m.fulls + m.diffs)
	r := f.races[m.race]
	if r == nil {
		return
	}
	r.answered++
	r.nacks++
	if !r.done && r.nacks == r.sent && f.nextUntried(r) < 0 {
		f.abandonRace(ctx, m.race, r)
		return
	}
	f.finishRace(m.race, r)
}

// nextUntried is the first cache (by failover ranking) the race has not
// asked yet and could still ask, or -1.
func (f *fleetNode) nextUntried(r *raceState) int {
	weights := f.curWeights()
	for _, i := range f.cacheRanking() {
		if !r.tried[i] && weights[i] > 0 {
			return i
		}
	}
	return -1
}

// abandonRace pools a race's clients into the coalesced retry path — the
// same place legacy refused fetches go — and marks it settled so any
// still-outstanding response is written off as waste.
func (f *fleetNode) abandonRace(ctx *simnet.Context, id int64, r *raceState) {
	r.done = true
	f.pendingFulls += r.fulls
	f.pendingDiffs += r.diffs
	f.finishRace(id, r)
	f.armRetry(ctx)
}

// finishRace drops a settled race once all its outstanding answers drained.
func (f *fleetNode) finishRace(id int64, r *raceState) {
	if r.done && r.answered >= r.sent {
		delete(f.races, id)
	}
}

// receiveBatch counts one completed batch download, running the
// verification path when it is enabled.
func (f *fleetNode) receiveBatch(ctx *simnet.Context, from simnet.NodeID, m *docBatch) {
	n := m.fulls + m.diffs
	if m.link == nil || f.chainCtx == nil {
		// No chain material in this run: every document is the consensus.
		f.accept(ctx, n)
		return
	}
	cacheIdx := f.cacheIdx[from]
	if f.verifier == nil {
		// Non-verifying clients believe whatever they are served. Clients
		// that accepted a stale or forked document think they are done —
		// they never re-fetch — but they do not hold the current genuine
		// consensus, so they count as misled, not covered.
		if m.link.Digest == f.chainCtx.Genuine.Digest {
			f.accept(ctx, n)
		} else {
			f.misled += n
		}
		return
	}
	switch f.verifier.Check(*m.link) {
	case client.VerdictAccept:
		st := f.digestState(m.link.Digest)
		st.fulls += m.fulls
		st.diffs += m.diffs
		st.caches[cacheIdx] = true
		// The fleet believes this document; the simulator knows whether the
		// belief is right. When the adversary's side of a fork won the
		// corroboration vote (compromised caches outnumbering honest ones),
		// verifying clients are still misled — verification narrows the
		// attack, it cannot beat a mirror majority.
		if m.link.Digest == f.chainCtx.Genuine.Digest {
			f.accept(ctx, n)
		} else {
			f.misled += n
		}

	case client.VerdictStale, client.VerdictInvalid:
		// The cache is re-serving an old epoch (or garbage): reject the
		// documents, stop asking this cache, re-fetch from the rest.
		f.staleRejections += int64(n)
		f.reject(ctx, cacheIdx, m.fulls, m.diffs)

	case client.VerdictFork:
		f.handleFork(ctx, cacheIdx, m)
	}
}

// accept counts n clients as covered at the current instant. A successful
// delivery also resets the backoff exponent: the next refusal backs off
// from Base again instead of the tail of the previous outage.
func (f *fleetNode) accept(ctx *simnet.Context, n int) {
	f.covered += n
	f.retryAttempt = 0
	f.points = append(f.points, CoveragePoint{At: ctx.Now(), Count: n})
	ctx.Trace(obs.Event{Type: obs.EvCoverage, A: int64(n), B: int64(f.covered)})
}

// reject distrusts the serving cache and queues the batch's clients for a
// re-fetch from the remaining caches.
func (f *fleetNode) reject(ctx *simnet.Context, cacheIdx, fulls, diffs int) {
	f.distrust(cacheIdx)
	f.extraFetches += int64(fulls + diffs)
	f.pendingFulls += fulls
	f.pendingDiffs += diffs
	f.armRetry(ctx)
}

func (f *fleetNode) digestState(d sig.Digest) *digestState {
	st := f.byDigest[d]
	if st == nil {
		st = &digestState{caches: make(map[int]bool)}
		f.byDigest[d] = st
	}
	return st
}

// handleFork resolves a detected fork: two validly signed successors of the
// same chain head are in play. The signature sets cannot say which side is
// genuine — that is exactly what equivocation means — so the fleet sides
// with the digest served by more independent caches, the aggregate analogue
// of a suspicious client asking additional directories. The minority side's
// caches are distrusted, any coverage its documents produced is retracted,
// and those clients re-fetch from the surviving caches. On a tie the fleet
// only parks the conflicting batch for retry: distrusting on one-vs-one
// evidence would let a single equivocating cache talk the fleet out of an
// honest one.
func (f *fleetNode) handleFork(ctx *simnet.Context, cacheIdx int, m *docBatch) {
	offered := m.link.Digest
	f.digestState(offered).caches[cacheIdx] = true

	accepted, ok := f.verifier.Accepted()
	if !ok {
		// Cannot happen: a fork verdict implies an accepted side. Reject
		// conservatively.
		f.reject(ctx, cacheIdx, m.fulls, m.diffs)
		return
	}
	accSt := f.digestState(accepted.Digest)
	offSt := f.digestState(offered)

	switch {
	case len(offSt.caches) > len(accSt.caches):
		// The newcomer side is corroborated by more caches: the fleet
		// concludes it was anchored on the fork. Re-anchor, retract the
		// coverage the old side produced, refetch those clients, and
		// distrust every cache that served it. Caches condemned earlier
		// for serving the now-winning side are re-trusted, and fork blame
		// pinned on that side is rewritten — corroboration verdicts are
		// revisable, only the proof is permanent. (If the compromised
		// caches are the majority, this is the fleet being talked out of
		// the genuine document — the accounting in receiveBatch/retract
		// keeps Covered honest either way.)
		link := *m.link
		if f.verifier.Switch(link) {
			f.retract(ctx, accepted.Digest, accSt)
		}
		//detlint:maporder ok(retrust is a commutative per-cache trust flip; the recomputed weights depend only on the final trust set)
		for c := range offSt.caches {
			f.retrust(c)
		}
		f.dropForkBlame(offered)
		// The triggering batch is on the now-trusted side.
		offSt.fulls += m.fulls
		offSt.diffs += m.diffs
		if offered == f.chainCtx.Genuine.Digest {
			f.accept(ctx, m.fulls+m.diffs)
		} else {
			f.misled += m.fulls + m.diffs
		}
		f.recordFork(ctx, accepted.Digest)

	case len(accSt.caches) > len(offSt.caches):
		// The established side stands; the offered document is the fork.
		f.recordFork(ctx, offered)
		f.reject(ctx, cacheIdx, m.fulls, m.diffs)

	default:
		// Tie: no basis to condemn either side yet. Park the batch's
		// clients for a retry — by the time it fires, other caches will
		// have weighed in.
		f.extraFetches += int64(m.fulls + m.diffs)
		f.pendingFulls += m.fulls
		f.pendingDiffs += m.diffs
		f.armRetry(ctx)
	}
}

// retract undoes the acceptance a fork side produced: its clients discard
// the document and re-enter the retry pool with their original download
// kinds. Genuine-side retractions (the fleet wrongly talked out of the real
// document) dent the coverage curve; fork-side retractions undo misled
// counts.
func (f *fleetNode) retract(ctx *simnet.Context, d sig.Digest, st *digestState) {
	n := st.fulls + st.diffs
	defer func() {
		//detlint:maporder ok(distrust is a commutative per-cache trust flip; the recomputed weights depend only on the final trust set)
		for c := range st.caches {
			f.distrust(c)
		}
	}()
	if n == 0 {
		return
	}
	if d == f.chainCtx.Genuine.Digest {
		f.covered -= n
		f.points = append(f.points, CoveragePoint{At: ctx.Now(), Count: -n})
	} else {
		f.misled -= n
	}
	f.extraFetches += int64(n)
	f.pendingFulls += st.fulls
	f.pendingDiffs += st.diffs
	st.fulls, st.diffs = 0, 0
	f.armRetry(ctx)
}

// recordFork notes (or refreshes) one fork detection against the blamed
// digest: the proof covering it and the caches seen serving it so far. A
// later sighting of another cache on the same side updates the existing
// event's cache list instead of minting a duplicate, so the final detection
// names every compromised cache the fleet caught, not just the first.
func (f *fleetNode) recordFork(ctx *simnet.Context, blamed sig.Digest) {
	var proof *chain.ForkProof
	for _, p := range f.verifier.Proofs() {
		if p.A.Digest == blamed || p.B.Digest == blamed {
			proof = p
		}
	}
	if proof == nil {
		return
	}
	var caches []int
	for c := range f.digestState(blamed).caches {
		caches = append(caches, c)
	}
	sort.Ints(caches)
	for i := range f.forkEvents {
		if f.forkEvents[i].blamed == blamed {
			f.forkEvents[i].det.Caches = caches
			return
		}
	}
	f.forkEvents = append(f.forkEvents, forkEvent{
		det:    ForkDetection{At: ctx.Now(), Caches: caches, Proof: proof},
		blamed: blamed,
	})
}

// dropForkBlame deletes detections pinned on a digest the fleet has since
// re-anchored onto — the blame was wrong, and keeping it would report an
// honest cache as compromised.
func (f *fleetNode) dropForkBlame(d sig.Digest) {
	kept := f.forkEvents[:0]
	for _, ev := range f.forkEvents {
		if ev.blamed != d {
			kept = append(kept, ev)
		}
	}
	f.forkEvents = kept
}

// armRetry coalesces refused fetches into one pending retry burst. Without
// a Spec.Backoff the burst fires after the fixed RetryDelay — the legacy
// schedule, kept byte for byte: every fleet refused in the same tick
// re-arms at the same multiple of RetryDelay, so the bursts land on the
// flooded tier as one synchronized spike. With a Backoff the delay grows
// exponentially per consecutive burst, capped, and jittered from the run's
// deterministic RNG — fleets desynchronize, and an optional budget sheds
// the pool once retries stop paying.
//
//detlint:hotpath
func (f *fleetNode) armRetry(ctx *simnet.Context) {
	if f.retryArmed {
		return
	}
	delay := f.spec.RetryDelay
	if b := f.spec.Backoff; b != nil {
		if b.Budget > 0 && f.retryBursts >= b.Budget {
			// Budget spent: shed the pool instead of hammering a tier that
			// has refused this fleet Budget bursts in a row. The dropped
			// clients stay uncovered and are accounted, not retried.
			f.retryDropped += int64(f.pendingFulls + f.pendingDiffs)
			f.pendingFulls, f.pendingDiffs = 0, 0
			return
		}
		delay = b.Delay(f.retryAttempt, ctx.Rand())
		f.retryAttempt++
	}
	f.retryArmed = true
	f.retryBursts++
	ctx.After(delay, func() { f.retryFire(ctx) }) //detlint:hotpath ok(one closure per armed burst, amortized over the backoff wait; the delay math itself is allocation-free)
}

// retryFire re-issues the coalesced pool across the caches by the current
// selection weights — the body of the retry burst, shared by the legacy
// fixed-delay and the backoff schedules.
func (f *fleetNode) retryFire(ctx *simnet.Context) {
	f.retryArmed = false
	fulls, diffs := f.pendingFulls, f.pendingDiffs
	f.pendingFulls, f.pendingDiffs = 0, 0
	if fulls+diffs == 0 {
		return
	}
	ctx.Trace(obs.Event{Type: obs.EvRetry, A: int64(fulls + diffs), B: int64(f.retryAttempt)})
	if f.trust != nil && f.trustedCaches() == 0 {
		// Every cache served bad data: there is nowhere left to fetch
		// from, so these clients stay uncovered. Dropping them (instead
		// of hammering known-bad caches) keeps the coverage metric
		// honest: a fully compromised tier yields zero verified
		// coverage, not a retry storm.
		return
	}
	weights := f.curWeights()
	fullSplit := splitCounts(&f.scratch.splitA, ctx.Rand(), fulls, weights)
	diffSplit := splitCounts(&f.scratch.splitB, ctx.Rand(), diffs, weights)
	for i := range f.caches {
		if fullSplit[i]+diffSplit[i] == 0 {
			continue
		}
		if f.spec.RaceK >= 1 {
			f.startRace(ctx, i, fullSplit[i], diffSplit[i])
		} else {
			ctx.Send(f.caches[i], &fleetFetch{fulls: fullSplit[i], diffs: diffSplit[i]})
		}
	}
}
