package dircache

import (
	"testing"
	"time"

	"partialtor/internal/attack"
	"partialtor/internal/chain"
	"partialtor/internal/simnet"
)

// compromiseSpec is smallSpec with n caches compromised in the given mode.
func compromiseSpec(mode attack.CompromiseMode, n int, verify bool) Spec {
	s := smallSpec()
	s.Compromise = &attack.CompromisePlan{
		Targets: attack.FirstTargets(n),
		Mode:    mode,
	}
	s.VerifyClients = verify
	return s
}

func TestStaleCachesMisleadUnverifiedClients(t *testing.T) {
	res, err := Run(compromiseSpec(attack.CompromiseStale, 3, false))
	if err != nil {
		t.Fatal(err)
	}
	// Chain-blind clients accept the previous epoch: they look covered but
	// are not.
	if res.Misled == 0 {
		t.Fatal("no clients misled by stale caches")
	}
	if res.Coverage()+float64(res.Misled)/float64(res.TotalClients) < 0.999 {
		t.Fatalf("population unaccounted for: covered %.3f, misled %d",
			res.Coverage(), res.Misled)
	}
	if res.NaiveCoverage() <= res.Coverage() {
		t.Fatalf("naive coverage %.3f not above genuine %.3f",
			res.NaiveCoverage(), res.Coverage())
	}
	// Nothing is detected without verification.
	if res.StaleRejections != 0 || len(res.ForkDetections) != 0 {
		t.Fatalf("detections without verification: stale=%d forks=%d",
			res.StaleRejections, len(res.ForkDetections))
	}
	// The genuine coverage lost must be roughly the compromised caches'
	// selection share (3 of 8).
	if res.Coverage() > 0.8 {
		t.Fatalf("stale caches barely dented genuine coverage: %.3f", res.Coverage())
	}
}

func TestVerifyingClientsRejectStaleCaches(t *testing.T) {
	res, err := Run(compromiseSpec(attack.CompromiseStale, 3, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Misled != 0 {
		t.Fatalf("%d verifying clients misled", res.Misled)
	}
	if res.StaleRejections == 0 {
		t.Fatal("no stale rejections recorded")
	}
	if res.ExtraFetches == 0 {
		t.Fatal("rejections should cost extra fetches")
	}
	// The rejected clients fall back to the five honest caches and the
	// population still reaches target coverage.
	if res.Coverage() < res.Spec.TargetCoverage {
		t.Fatalf("verified coverage %.3f below target %.2f",
			res.Coverage(), res.Spec.TargetCoverage)
	}
	if res.TimeToTarget == simnet.Never {
		t.Fatal("target coverage never reached despite honest majority")
	}
	// All three stale caches end up distrusted by at least one fleet.
	if len(res.DistrustedCaches) != 3 {
		t.Fatalf("distrusted caches %v, want the 3 stale ones", res.DistrustedCaches)
	}
	for i, c := range res.DistrustedCaches {
		if c != i {
			t.Fatalf("distrusted caches %v, want [0 1 2]", res.DistrustedCaches)
		}
	}
}

func TestEquivocatingCachesPoisonUnverifiedClients(t *testing.T) {
	res, err := Run(compromiseSpec(attack.CompromiseEquivocate, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Misled == 0 {
		t.Fatal("no clients took the fork")
	}
	if len(res.ForkDetections) != 0 {
		t.Fatal("fork detected without verification")
	}
}

func TestVerifyingClientsDetectEquivocation(t *testing.T) {
	res, err := Run(compromiseSpec(attack.CompromiseEquivocate, 2, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Misled != 0 {
		t.Fatalf("%d verifying clients misled", res.Misled)
	}
	if len(res.ForkDetections) == 0 {
		t.Fatal("equivocation went undetected")
	}
	det := res.ForkDetections[0]
	if det.Proof == nil {
		t.Fatal("detection carries no fork proof")
	}
	// The detection names the compromised caches and nobody else.
	for _, c := range det.Caches {
		if c != 0 && c != 1 {
			t.Fatalf("detection blames honest cache %d (caches %v)", c, det.Caches)
		}
	}
	if len(det.Caches) == 0 {
		t.Fatal("detection names no cache")
	}
	// Coverage still reached via the honest caches.
	if res.Coverage() < res.Spec.TargetCoverage {
		t.Fatalf("verified coverage %.3f below target", res.Coverage())
	}
	if res.TimeToTarget == simnet.Never {
		t.Fatal("target never reached despite honest majority")
	}
	// No honest cache may end up distrusted.
	for _, c := range res.DistrustedCaches {
		if c > 1 {
			t.Fatalf("honest cache %d distrusted (%v)", c, res.DistrustedCaches)
		}
	}
}

// TestForkProofRoundTripAndCulprits pins the satellite requirement: the
// proof a verifying fleet assembles against an equivocating cache survives
// the chain codec, and its culprit set is exactly the signer set the
// adversary used on the fork.
func TestForkProofRoundTripAndCulprits(t *testing.T) {
	spec := compromiseSpec(attack.CompromiseEquivocate, 2, true)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ForkDetections) == 0 {
		t.Fatal("no fork detections to round-trip")
	}
	proof := res.ForkDetections[0].Proof

	// Culprits: the adversary signed the fork with the same majority that
	// signed the genuine link (the paper's misbehaving-majority epoch), so
	// every fork signer is a culprit.
	ctx := res.Spec.Chain
	if ctx == nil {
		t.Fatal("run synthesized no chain context")
	}
	culprits := proof.Culprits()
	if len(culprits) != len(ctx.ForkSigners) {
		t.Fatalf("culprits %v, want the fork signers %v", culprits, ctx.ForkSigners)
	}
	got := map[int]bool{}
	for _, c := range culprits {
		got[c] = true
	}
	for _, s := range ctx.ForkSigners {
		if !got[s] {
			t.Fatalf("fork signer %d missing from culprits %v", s, culprits)
		}
	}

	// Round-trip both sides of the proof through the persistence codec: the
	// evidence must still verify after decode.
	links := []chain.Link{proof.A, proof.B}
	decoded, err := chain.DecodeLinks(chain.EncodeLinks(links))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d links", len(decoded))
	}
	reproof, ok := chain.DetectFork(ctx.Pubs, ctx.Threshold, decoded[0], decoded[1])
	if !ok {
		t.Fatal("decoded links no longer prove the fork")
	}
	if reproof.A.Digest != proof.A.Digest || reproof.B.Digest != proof.B.Digest {
		t.Fatal("round-tripped proof identifies different documents")
	}
}

// TestCompromiseOnsetGatesMisbehavior: a plan with Onset 2 leaves periods 0
// and 1 honest.
func TestCompromiseOnsetGatesMisbehavior(t *testing.T) {
	spec := compromiseSpec(attack.CompromiseStale, 3, true)
	spec.Compromise.Onset = 2

	early, err := Run(spec) // Period 0 < Onset
	if err != nil {
		t.Fatal(err)
	}
	if early.StaleRejections != 0 || early.Misled != 0 {
		t.Fatalf("compromise active before onset: stale=%d misled=%d",
			early.StaleRejections, early.Misled)
	}
	if early.Coverage() < 0.999 {
		t.Fatalf("pre-onset coverage %.3f", early.Coverage())
	}

	spec.Period = 2
	late, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if late.StaleRejections == 0 {
		t.Fatal("compromise inactive at its onset period")
	}
}

// TestFullyCompromisedTierYieldsZeroVerifiedCoverage: when every cache is
// stale, verifying clients have nowhere honest to fall back to — coverage
// must go to zero rather than into a retry storm.
func TestFullyCompromisedTierYieldsZeroVerifiedCoverage(t *testing.T) {
	spec := smallSpec()
	spec.Compromise = &attack.CompromisePlan{
		Targets: attack.FirstTargets(spec.Caches),
		Mode:    attack.CompromiseStale,
	}
	spec.VerifyClients = true
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered != 0 {
		t.Fatalf("%d clients covered by an all-stale tier", res.Covered)
	}
	if res.Misled != 0 {
		t.Fatalf("%d verifying clients misled", res.Misled)
	}
	if res.StaleRejections == 0 {
		t.Fatal("no rejections recorded")
	}
	if res.TimeToTarget != simnet.Never {
		t.Fatalf("target reached at %v on an all-stale tier", res.TimeToTarget)
	}
}

// TestHonestVerificationIsFree: verification with an all-honest tier must
// not reject anything or change coverage.
func TestHonestVerificationIsFree(t *testing.T) {
	plain, err := Run(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec()
	spec.VerifyClients = true
	verified, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if verified.StaleRejections != 0 || verified.Misled != 0 ||
		len(verified.ForkDetections) != 0 || verified.ExtraFetches != 0 {
		t.Fatalf("honest tier triggered the verifier: %s", verified.Summary())
	}
	if verified.Coverage() != plain.Coverage() {
		t.Fatalf("verification changed honest coverage: %.4f vs %.4f",
			verified.Coverage(), plain.Coverage())
	}
}

// TestCompromiseValidation rejects malformed compromise specs.
func TestCompromiseValidation(t *testing.T) {
	bad := []Spec{
		{Caches: 4, Compromise: &attack.CompromisePlan{Targets: []int{4}, Mode: attack.CompromiseStale}},
		{Compromise: &attack.CompromisePlan{Mode: attack.CompromiseMode(9)}},
		{Compromise: &attack.CompromisePlan{Mode: attack.CompromiseStale, Onset: -1}},
		{Period: -1},
	}
	for i, s := range bad {
		if _, err := Run(s); err == nil {
			t.Fatalf("case %d: invalid spec accepted", i)
		}
	}
}

// TestCompromiseDeterministic: compromised runs are as reproducible as
// healthy ones.
func TestCompromiseDeterministic(t *testing.T) {
	spec := compromiseSpec(attack.CompromiseEquivocate, 2, true)
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Covered != b.Covered || a.StaleRejections != b.StaleRejections ||
		a.ExtraFetches != b.ExtraFetches || len(a.ForkDetections) != len(b.ForkDetections) {
		t.Fatalf("same seed diverged:\n%s\n%s", a.Summary(), b.Summary())
	}
}

// TestStaleCacheServesWithoutFetching: a stale cache never contacts the
// authorities yet serves from t=0 — it looks *faster* than honest caches,
// which is what makes the attack insidious.
func TestStaleCacheServesWithoutFetching(t *testing.T) {
	spec := compromiseSpec(attack.CompromiseStale, 2, false)
	spec.PublishAt = 2 * time.Minute // honest caches must wait for this
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The stale caches served before the genuine consensus even existed.
	first := res.Spec.RunLimit
	for _, p := range res.Points {
		if p.At < first {
			first = p.At
		}
	}
	if res.Misled == 0 {
		t.Fatal("stale caches served nobody")
	}
	// Stale caches never fetched: only honest caches show a fetch instant.
	withDoc := 0
	for _, at := range res.CacheFetchedAt {
		if at != simnet.Never {
			withDoc++
		}
	}
	if withDoc != res.Spec.Caches-2 {
		t.Fatalf("%d caches fetched, want %d honest ones", withDoc, res.Spec.Caches-2)
	}
}

// TestMirrorMajorityBeatsVerification pins the coverage cliff's far side:
// when equivocating caches outnumber honest ones, the corroboration vote
// goes to the adversary and even verifying clients in the fork-target
// fleets are misled. Verification narrows the attack to the fork-target
// fraction; it cannot beat a mirror majority.
func TestMirrorMajorityBeatsVerification(t *testing.T) {
	spec := smallSpec() // 8 caches
	spec.Compromise = &attack.CompromisePlan{
		Targets:           attack.FirstTargets(6),
		Mode:              attack.CompromiseEquivocate,
		ForkFleetFraction: 1, // every fleet is a fork target
	}
	spec.VerifyClients = true
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misled == 0 {
		t.Fatal("a compromised mirror majority misled nobody")
	}
	if res.Coverage() >= res.Spec.TargetCoverage {
		t.Fatalf("genuine coverage %.3f despite a compromised majority", res.Coverage())
	}
	// The equivocation is still detected and proven, even though the vote
	// was lost — that is the residual value of hash chaining here.
	if len(res.ForkDetections) == 0 {
		t.Fatal("fork undetected")
	}
}

// TestEquivocationBlameAcrossSeeds is the regression net for transient
// corroboration: equivocating caches pre-load their fork, so a fork-target
// fleet can anchor on the adversary's side and condemn the first honest
// cache that contradicts it. Blame and trust must be revised once the
// honest majority weighs in — across many seeds, the final detections and
// distrust set may name only the compromised caches, and coverage must
// still reach target. (Seeds 14, 20, 41 reproduced the pre-fix wrong
// blame.)
func TestEquivocationBlameAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		spec := compromiseSpec(attack.CompromiseEquivocate, 2, true)
		spec.Seed = seed
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.ForkDetections) == 0 {
			t.Fatalf("seed %d: equivocation undetected", seed)
		}
		for _, det := range res.ForkDetections {
			if len(det.Caches) == 0 {
				t.Fatalf("seed %d: detection names no cache", seed)
			}
			for _, c := range det.Caches {
				if c > 1 {
					t.Fatalf("seed %d: detection blames honest cache %d (%v)",
						seed, c, det.Caches)
				}
			}
		}
		for _, c := range res.DistrustedCaches {
			if c > 1 {
				t.Fatalf("seed %d: honest cache %d left distrusted (%v)",
					seed, c, res.DistrustedCaches)
			}
		}
		if res.Coverage() < res.Spec.TargetCoverage {
			t.Fatalf("seed %d: coverage %.3f below target", seed, res.Coverage())
		}
		if res.Misled != 0 {
			t.Fatalf("seed %d: %d verifying clients misled", seed, res.Misled)
		}
	}
}
