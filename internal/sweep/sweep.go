package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"
)

// Axis is one named dimension of a grid. Values are heterogeneous on
// purpose: sweeps mix relay counts (int), bandwidths (float64), durations
// and protocol enums along different axes.
type Axis struct {
	Name   string
	Values []any
}

// Ints builds an axis of integer values (relay counts, cache counts, ...).
func Ints(name string, vals ...int) Axis {
	a := Axis{Name: name, Values: make([]any, len(vals))}
	for i, v := range vals {
		a.Values[i] = v
	}
	return a
}

// Floats builds an axis of float values (bandwidths, residuals, ...).
func Floats(name string, vals ...float64) Axis {
	a := Axis{Name: name, Values: make([]any, len(vals))}
	for i, v := range vals {
		a.Values[i] = v
	}
	return a
}

// Durations builds an axis of durations (attack windows, timeouts, ...).
func Durations(name string, vals ...time.Duration) Axis {
	a := Axis{Name: name, Values: make([]any, len(vals))}
	for i, v := range vals {
		a.Values[i] = v
	}
	return a
}

// Of builds an axis from any value slice (protocol enums, booleans, ...).
func Of[T any](name string, vals ...T) Axis {
	a := Axis{Name: name, Values: make([]any, len(vals))}
	for i, v := range vals {
		a.Values[i] = v
	}
	return a
}

// Grid is the cartesian product of its axes.
type Grid struct {
	Axes []Axis
}

// New assembles a grid. Every axis must be named and non-empty; duplicate
// names are rejected (a cell could not address the earlier axis).
func New(axes ...Axis) (Grid, error) {
	seen := make(map[string]bool, len(axes))
	for _, a := range axes {
		if a.Name == "" {
			return Grid{}, fmt.Errorf("sweep: unnamed axis")
		}
		if len(a.Values) == 0 {
			return Grid{}, fmt.Errorf("sweep: axis %q has no values", a.Name)
		}
		if seen[a.Name] {
			return Grid{}, fmt.Errorf("sweep: duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
	}
	return Grid{Axes: axes}, nil
}

// MustNew is New for statically known axes, where a malformed grid is a
// programming error.
func MustNew(axes ...Axis) Grid {
	g, err := New(axes...)
	if err != nil {
		panic(err)
	}
	return g
}

// Size is the number of cells (the product of the axis lengths; 1 for the
// empty grid, which has exactly one cell: the empty coordinate).
func (g Grid) Size() int {
	n := 1
	for _, a := range g.Axes {
		n *= len(a.Values)
	}
	return n
}

// Cell returns the rank-th cell in row-major order (first axis slowest).
func (g Grid) Cell(rank int) Cell {
	if rank < 0 || rank >= g.Size() {
		panic(fmt.Sprintf("sweep: cell rank %d outside grid of %d", rank, g.Size()))
	}
	coords := make([]int, len(g.Axes))
	r := rank
	for i := len(g.Axes) - 1; i >= 0; i-- {
		n := len(g.Axes[i].Values)
		coords[i] = r % n
		r /= n
	}
	return Cell{Rank: rank, coords: coords, axes: g.Axes}
}

// Cell is one grid point: a rank plus a value per axis.
type Cell struct {
	// Rank is the cell's row-major position; Run's result slice is indexed
	// by it.
	Rank   int
	coords []int
	axes   []Axis
}

// Value returns the cell's value on the named axis; it panics on an unknown
// axis name (a typo in sweep code, not an input condition).
func (c Cell) Value(name string) any {
	for i, a := range c.axes {
		if a.Name == name {
			return a.Values[c.coords[i]]
		}
	}
	panic(fmt.Sprintf("sweep: no axis %q in cell %s", name, c))
}

// Index returns the cell's position along the named axis.
func (c Cell) Index(name string) int {
	for i, a := range c.axes {
		if a.Name == name {
			return c.coords[i]
		}
	}
	panic(fmt.Sprintf("sweep: no axis %q in cell %s", name, c))
}

// Int returns the named axis value as an int.
func (c Cell) Int(name string) int { return c.Value(name).(int) }

// Float returns the named axis value as a float64.
func (c Cell) Float(name string) float64 { return c.Value(name).(float64) }

// Duration returns the named axis value as a time.Duration.
func (c Cell) Duration(name string) time.Duration { return c.Value(name).(time.Duration) }

// String renders the cell's coordinates ("caches=10 clients=100000"), the
// context every per-cell error is wrapped with.
func (c Cell) String() string {
	var b strings.Builder
	for i, a := range c.axes {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", a.Name, a.Values[c.coords[i]])
	}
	return b.String()
}

// Result pairs one cell with its outcome. Exactly one of Value and Err is
// meaningful: Err captures the callback's error (or recovered panic) and
// leaves Value at the zero value.
type Result[T any] struct {
	Cell  Cell
	Value T
	Err   error
}

// Run evaluates fn on every cell of the grid with a pool of `workers`
// goroutines (workers <= 0 selects GOMAXPROCS; 1 is the serial baseline).
// The returned slice is indexed by cell rank, so the result order is
// deterministic and independent of completion order — a parallel run of a
// deterministic fn is indistinguishable from a serial one. A panicking fn
// fails its own cell only; the panic is captured as that cell's Err.
func Run[T any](g Grid, workers int, fn func(Cell) (T, error)) []Result[T] {
	return RunCtx(context.Background(), g, workers,
		func(_ context.Context, c Cell) (T, error) { return fn(c) })
}

// RunCtx is Run with cancellation: the context is handed to every cell and
// consulted between cells. Once ctx is cancelled no new cell starts; cells
// already in flight run to completion (a deterministic fn may watch ctx to
// abort early), their results are kept, and every never-started cell carries
// ctx's error wrapped in ErrCellSkipped. Completed work is never discarded —
// the property adaptive grids and long interactive sweeps rely on.
func RunCtx[T any](ctx context.Context, g Grid, workers int, fn func(context.Context, Cell) (T, error)) []Result[T] {
	return RunParams(ctx, g, Params{Workers: workers}, fn)
}

// Params configures a sweep run beyond the grid and the cell function.
type Params struct {
	// Workers bounds the worker pool (<= 0 selects GOMAXPROCS).
	Workers int
	// OnCell, when set, observes progress: it is called once per finished
	// cell — including cells skipped by cancellation — with the running
	// completion count, the grid size, and that cell's error (nil on
	// success). Calls are serialized, so the callback needs no locking of
	// its own, but they come from worker goroutines: a slow callback slows
	// the sweep.
	OnCell func(done, total int, cellErr error)
}

// RunParams is RunCtx with a Params block: the same pool, cancellation and
// determinism contract, plus optional live progress reporting.
func RunParams[T any](ctx context.Context, g Grid, p Params, fn func(context.Context, Cell) (T, error)) []Result[T] {
	n := g.Size()
	results := make([]Result[T], n)
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var progressMu sync.Mutex
	done := 0
	report := func(err error) {
		if p.OnCell == nil {
			return
		}
		progressMu.Lock()
		done++
		p.OnCell(done, n, err)
		progressMu.Unlock()
	}
	ranks := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rank := range ranks {
				cell := g.Cell(rank)
				// A cell can be handed off in the same instant the context
				// dies; re-checking here makes "no cell starts after
				// cancellation" deterministic rather than racy.
				if err := ctx.Err(); err != nil {
					results[rank] = skippedCell[T](cell, err)
					report(results[rank].Err)
					continue
				}
				results[rank] = runCell(ctx, cell, fn)
				report(results[rank].Err)
			}
		}()
	}
	next := 0
dispatch:
	for ; next < n; next++ {
		select {
		case ranks <- next:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(ranks)
	wg.Wait()
	for rank := next; rank < n; rank++ {
		results[rank] = skippedCell[T](g.Cell(rank), ctx.Err())
		report(results[rank].Err)
	}
	return results
}

// ErrCellSkipped marks a cell a cancelled context prevented from running at
// all; errors.Is distinguishes skipped cells from cells that ran and failed.
var ErrCellSkipped = fmt.Errorf("sweep: cell skipped")

// skippedCell is the result of a cell the cancelled context kept from
// running ("sweep: cell skipped: a=1 b=2: context canceled").
func skippedCell[T any](cell Cell, cause error) Result[T] {
	return Result[T]{
		Cell: cell,
		Err:  fmt.Errorf("%w: %s: %w", ErrCellSkipped, cell, cause),
	}
}

// runCell evaluates one cell, converting a panic into the cell's error so a
// single bad configuration cannot abort a long sweep.
func runCell[T any](ctx context.Context, cell Cell, fn func(context.Context, Cell) (T, error)) (res Result[T]) {
	res.Cell = cell
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("sweep: cell %s panicked: %v", cell, r)
		}
	}()
	res.Value, res.Err = fn(ctx, cell)
	return res
}

// FirstErr returns the first genuinely failed cell's error (by rank), or
// nil if every cell either succeeded or was skipped by cancellation.
//
// Cells carrying ErrCellSkipped are not failures — they are work a
// cancelled context prevented, and the caller that cancelled already knows
// why. Counting them here would make every interrupted sweep look broken
// and bury the one real failure behind whatever skipped cell ranks first.
// To tell a cancelled-but-clean sweep from a complete one, use Skipped (or
// the context's own error); to inspect skipped cells individually, test
// each Result.Err with errors.Is(err, ErrCellSkipped).
func FirstErr[T any](results []Result[T]) error {
	for _, r := range results {
		if r.Err != nil && !errors.Is(r.Err, ErrCellSkipped) {
			return fmt.Errorf("%s: %w", r.Cell, r.Err)
		}
	}
	return nil
}

// Skipped counts the cells a cancelled context kept from running. A sweep
// is complete iff Skipped returns 0; FirstErr alone cannot tell a cancelled
// sweep from a finished one, by design.
func Skipped[T any](results []Result[T]) int {
	n := 0
	for _, r := range results {
		if errors.Is(r.Err, ErrCellSkipped) {
			n++
		}
	}
	return n
}
