package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestGridEnumeratesRowMajor(t *testing.T) {
	g := MustNew(
		Ints("a", 1, 2),
		Floats("b", 0.5, 1.5, 2.5),
		Of("c", "x", "y"),
	)
	if g.Size() != 12 {
		t.Fatalf("size=%d, want 12", g.Size())
	}
	// The enumeration must match the nested loops the engine replaces:
	// first axis slowest.
	var want []string
	for _, a := range []int{1, 2} {
		for _, b := range []float64{0.5, 1.5, 2.5} {
			for _, c := range []string{"x", "y"} {
				want = append(want, fmt.Sprintf("a=%d b=%g c=%s", a, b, c))
			}
		}
	}
	for rank := 0; rank < g.Size(); rank++ {
		cell := g.Cell(rank)
		if cell.String() != want[rank] {
			t.Fatalf("cell %d = %q, want %q", rank, cell, want[rank])
		}
		if cell.Rank != rank {
			t.Fatalf("cell %d reports rank %d", rank, cell.Rank)
		}
	}
}

func TestCellAccessors(t *testing.T) {
	g := MustNew(
		Ints("relays", 100),
		Floats("mbit", 2.5),
		Durations("window", 5*time.Minute),
		Of("attacked", true),
	)
	c := g.Cell(0)
	if c.Int("relays") != 100 || c.Float("mbit") != 2.5 ||
		c.Duration("window") != 5*time.Minute || c.Value("attacked") != true {
		t.Fatalf("accessors wrong: %s", c)
	}
	if c.Index("mbit") != 0 {
		t.Fatalf("index=%d", c.Index("mbit"))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown axis name did not panic")
		}
	}()
	c.Value("nope")
}

func TestNewRejectsMalformedGrids(t *testing.T) {
	cases := [][]Axis{
		{{Name: "", Values: []any{1}}},
		{{Name: "a"}},
		{Ints("a", 1), Ints("a", 2)},
	}
	for i, axes := range cases {
		if _, err := New(axes...); err == nil {
			t.Fatalf("case %d: malformed grid accepted", i)
		}
	}
	if _, err := New(); err != nil {
		t.Fatalf("empty grid rejected: %v", err)
	}
	if g := MustNew(); g.Size() != 1 {
		t.Fatalf("empty grid size %d, want 1 (a single empty cell)", MustNew().Size())
	}
}

// TestParallelMatchesSerial is the engine's core guarantee: an 8-worker run
// of a deterministic callback produces results identical — same values, same
// order — to the serial baseline, independent of completion order. The
// callback sleeps inversely to rank so late cells finish first.
func TestParallelMatchesSerial(t *testing.T) {
	g := MustNew(Ints("x", 0, 1, 2, 3), Ints("y", 0, 1, 2, 3, 4))
	fn := func(c Cell) (string, error) {
		// Finish in roughly reverse rank order to exercise reordering.
		time.Sleep(time.Duration(g.Size()-c.Rank) * time.Millisecond)
		if c.Int("x") == 2 && c.Int("y") == 3 {
			return "", fmt.Errorf("boom at %s", c)
		}
		return fmt.Sprintf("%d*%d", c.Int("x"), c.Int("y")), nil
	}
	serial := Run(g, 1, fn)
	parallel := Run(g, 8, fn)
	if len(serial) != g.Size() || len(parallel) != g.Size() {
		t.Fatalf("lengths %d/%d, want %d", len(serial), len(parallel), g.Size())
	}
	for i := range serial {
		if serial[i].Cell.Rank != i || parallel[i].Cell.Rank != i {
			t.Fatalf("result %d out of rank order", i)
		}
		if serial[i].Value != parallel[i].Value {
			t.Fatalf("cell %d diverged: %q vs %q", i, serial[i].Value, parallel[i].Value)
		}
		se, pe := serial[i].Err, parallel[i].Err
		if (se == nil) != (pe == nil) || (se != nil && se.Error() != pe.Error()) {
			t.Fatalf("cell %d errors diverged: %v vs %v", i, se, pe)
		}
	}
}

func TestPerCellErrorCapture(t *testing.T) {
	g := MustNew(Ints("i", 0, 1, 2, 3))
	sentinel := errors.New("bad cell")
	results := Run(g, 4, func(c Cell) (int, error) {
		switch c.Int("i") {
		case 1:
			return 0, sentinel
		case 2:
			panic("cell exploded")
		}
		return 10 * c.Int("i"), nil
	})
	if results[0].Err != nil || results[3].Err != nil {
		t.Fatalf("healthy cells failed: %v %v", results[0].Err, results[3].Err)
	}
	if results[0].Value != 0 || results[3].Value != 30 {
		t.Fatalf("healthy values wrong: %d %d", results[0].Value, results[3].Value)
	}
	if !errors.Is(results[1].Err, sentinel) {
		t.Fatalf("error cell: %v", results[1].Err)
	}
	// A panicking cell fails alone, with the panic and coordinates captured.
	if results[2].Err == nil || !strings.Contains(results[2].Err.Error(), "cell exploded") ||
		!strings.Contains(results[2].Err.Error(), "i=2") {
		t.Fatalf("panic cell: %v", results[2].Err)
	}
	if err := FirstErr(results); err == nil || !strings.Contains(err.Error(), "i=1") {
		t.Fatalf("FirstErr = %v, want the rank-1 failure", err)
	}
	if err := FirstErr(results[:1]); err != nil {
		t.Fatalf("FirstErr on clean prefix: %v", err)
	}
}

// TestWorkerPoolActuallyFansOut asserts the pool runs cells concurrently:
// with 8 workers and cells that block until at least 4 run at once, the
// sweep can only finish if the pool really fans out.
func TestWorkerPoolActuallyFansOut(t *testing.T) {
	g := MustNew(Ints("i", 0, 1, 2, 3, 4, 5, 6, 7))
	var running, peak atomic.Int32
	results := Run(g, 8, func(c Cell) (int, error) {
		now := running.Add(1)
		defer running.Add(-1)
		for {
			old := peak.Load()
			if now <= old || peak.CompareAndSwap(old, now) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		return 0, nil
	})
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	// On a single-core box the scheduler still interleaves the sleeps, so
	// at least two cells must have been in flight together.
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d, want >= 2", peak.Load())
	}
}

// TestRunCtxCancellationKeepsCompletedCells is the cancellation contract:
// cells finished before the context died keep their results, and every cell
// the sweep never started carries ErrCellSkipped wrapping the context error.
func TestRunCtxCancellationKeepsCompletedCells(t *testing.T) {
	g := MustNew(Ints("i", 0, 1, 2, 3, 4, 5, 6, 7))
	ctx, cancel := context.WithCancel(context.Background())
	results := RunCtx(ctx, g, 1, func(ctx context.Context, c Cell) (int, error) {
		if c.Int("i") == 2 {
			cancel() // die mid-sweep, with cells 0-2 complete
		}
		return 10 * c.Int("i"), nil
	})
	if len(results) != 8 {
		t.Fatalf("results=%d", len(results))
	}
	for i := 0; i <= 2; i++ {
		if results[i].Err != nil || results[i].Value != 10*i {
			t.Fatalf("completed cell %d lost: value=%d err=%v", i, results[i].Value, results[i].Err)
		}
	}
	skipped := 0
	for i := 3; i < 8; i++ {
		r := results[i]
		if r.Err == nil {
			t.Fatalf("cell %d ran after cancellation", i)
		}
		if !errors.Is(r.Err, ErrCellSkipped) || !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("cell %d error %v, want ErrCellSkipped wrapping context.Canceled", i, r.Err)
		}
		skipped++
	}
	if skipped == 0 {
		t.Fatal("cancellation skipped nothing")
	}
}

// TestRunCtxPreCancelled: a context dead on arrival runs nothing.
func TestRunCtxPreCancelled(t *testing.T) {
	g := MustNew(Ints("i", 0, 1, 2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	results := RunCtx(ctx, g, 4, func(context.Context, Cell) (int, error) {
		ran.Add(1)
		return 0, nil
	})
	// The unbuffered dispatch channel may still hand out a cell or two
	// before the select observes Done; the guarantee is that skipped cells
	// are marked, in rank order, and nothing is lost.
	for _, r := range results {
		if r.Err == nil && ran.Load() == 0 {
			t.Fatalf("cell %s reported success without running", r.Cell)
		}
	}
	if int(ran.Load()) == g.Size() {
		t.Fatal("pre-cancelled context ran the whole sweep")
	}
}

// TestRunCtxPassesContextToCells: the cell callback receives the sweep's
// context so a long-running cell can abort early.
func TestRunCtxPassesContextToCells(t *testing.T) {
	type ctxKey struct{}
	ctx := context.WithValue(context.Background(), ctxKey{}, "payload")
	g := MustNew(Ints("i", 1))
	results := RunCtx(ctx, g, 1, func(ctx context.Context, c Cell) (string, error) {
		v, _ := ctx.Value(ctxKey{}).(string)
		return v, nil
	})
	if results[0].Value != "payload" {
		t.Fatalf("cell saw %q", results[0].Value)
	}
}

func TestRunDefaultsWorkers(t *testing.T) {
	g := MustNew(Ints("i", 1, 2, 3))
	results := Run(g, 0, func(c Cell) (int, error) { return c.Int("i") * 2, nil })
	for i, r := range results {
		if r.Value != (i+1)*2 {
			t.Fatalf("cell %d value %d", i, r.Value)
		}
	}
}

func TestParseIntsAndFloats(t *testing.T) {
	ints, err := ParseInts(" 10, 20,40")
	if err != nil || len(ints) != 3 || ints[0] != 10 || ints[2] != 40 {
		t.Fatalf("ParseInts: %v %v", ints, err)
	}
	// The offending element is named — "10,,40" used to surface as a bare
	// strconv error with no hint which element was empty.
	if _, err := ParseInts("10,,40"); err == nil || !strings.Contains(err.Error(), `element 2 ("")`) {
		t.Fatalf("ParseInts empty element: %v", err)
	}
	floats, err := ParseFloats("-1,0.5,2.5e6")
	if err != nil || len(floats) != 3 || floats[0] != -1 || floats[2] != 2.5e6 {
		t.Fatalf("ParseFloats: %v %v", floats, err)
	}
	if _, err := ParseFloats("1,x"); err == nil || !strings.Contains(err.Error(), `element 2 ("x")`) {
		t.Fatalf("ParseFloats bad element: %v", err)
	}
}

func TestParsePositiveInts(t *testing.T) {
	if got, err := ParsePositiveInts("5,10"); err != nil || len(got) != 2 {
		t.Fatalf("ParsePositiveInts: %v %v", got, err)
	}
	for _, bad := range []string{"0", "5,-1", "5,,10"} {
		if _, err := ParsePositiveInts(bad); err == nil {
			t.Fatalf("ParsePositiveInts(%q) accepted", bad)
		}
	}
}

// TestFirstErrSkipsCancelledCells pins the FirstErr contract: skipped cells
// are not failures. A sweep cancelled mid-flight with no genuine failure
// reports a nil FirstErr (the caller that cancelled already knows), while a
// real failure surfaces even when skipped cells rank before it.
func TestFirstErrSkipsCancelledCells(t *testing.T) {
	g := MustNew(Ints("i", 0, 1, 2, 3))
	ctx, cancel := context.WithCancel(context.Background())
	clean := RunCtx(ctx, g, 1, func(_ context.Context, c Cell) (int, error) {
		if c.Int("i") == 1 {
			cancel()
		}
		return c.Int("i"), nil
	})
	if n := Skipped(clean); n == 0 {
		t.Fatal("cancellation skipped nothing — the test lost its premise")
	}
	if err := FirstErr(clean); err != nil {
		t.Fatalf("cancelled-but-clean sweep reports failure: %v", err)
	}

	// A genuine failure is reported even with skipped cells ranked earlier.
	sentinel := errors.New("cell failed for real")
	ctx2, cancel2 := context.WithCancel(context.Background())
	mixed := RunCtx(ctx2, g, 1, func(_ context.Context, c Cell) (int, error) {
		if c.Int("i") == 1 {
			cancel2()
			return 0, sentinel
		}
		return c.Int("i"), nil
	})
	if err := FirstErr(mixed); !errors.Is(err, sentinel) {
		t.Fatalf("FirstErr = %v, want the genuine failure", err)
	}
	// Completeness accounting: exactly the never-started cells are skipped.
	if n := Skipped(mixed); n != 2 {
		t.Fatalf("Skipped = %d, want 2 (cells 2 and 3)", n)
	}
	if Skipped(clean[:2]) != 0 {
		t.Fatal("completed prefix miscounted as skipped")
	}
}

func TestOnCellReportsEveryCell(t *testing.T) {
	g := MustNew(Ints("i", 0, 1, 2, 3, 4, 5, 6, 7, 8, 9))
	boom := errors.New("boom")
	var calls []int
	var errs int
	last := 0
	results := RunParams(context.Background(), g, Params{
		Workers: 4,
		OnCell: func(done, total int, cellErr error) {
			// The callback contract: serialized, done strictly increasing,
			// total constant.
			if total != g.Size() {
				panic(fmt.Sprintf("total=%d", total))
			}
			if done != last+1 {
				panic(fmt.Sprintf("done jumped %d -> %d", last, done))
			}
			last = done
			calls = append(calls, done)
			if cellErr != nil {
				errs++
			}
		},
	}, func(_ context.Context, c Cell) (int, error) {
		if c.Int("i")%3 == 0 {
			return 0, boom
		}
		return c.Int("i"), nil
	})
	if len(results) != g.Size() {
		t.Fatalf("results=%d", len(results))
	}
	if len(calls) != g.Size() {
		t.Fatalf("OnCell fired %d times, want %d", len(calls), g.Size())
	}
	if errs != 4 {
		t.Fatalf("OnCell saw %d errors, want 4", errs)
	}
}

func TestOnCellCountsSkippedCells(t *testing.T) {
	// Cancellation mid-sweep: every cell still reports exactly once, the
	// skipped ones with ErrCellSkipped, so a progress meter always reaches
	// total and never hangs at n-1.
	g := MustNew(Ints("i", 0, 1, 2, 3, 4, 5, 6, 7))
	ctx, cancel := context.WithCancel(context.Background())
	var fired, skipped atomic.Int32
	RunParams(ctx, g, Params{
		Workers: 1,
		OnCell: func(done, total int, cellErr error) {
			fired.Add(1)
			if errors.Is(cellErr, ErrCellSkipped) {
				skipped.Add(1)
			}
		},
	}, func(_ context.Context, c Cell) (int, error) {
		if c.Int("i") == 2 {
			cancel()
		}
		return 0, nil
	})
	if int(fired.Load()) != g.Size() {
		t.Fatalf("OnCell fired %d times, want %d (skipped cells must report too)", fired.Load(), g.Size())
	}
	if skipped.Load() == 0 {
		t.Fatal("no skipped cells reported despite mid-sweep cancellation")
	}
}
