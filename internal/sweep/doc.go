// Package sweep is the generic grid engine every parameter sweep in this
// repository runs on: the paper's headline results are sweep tables (attack
// duration × targets × residual, §4.3, Figures 7/10/11), and a reproduction
// lives or dies on how dense a parameter grid it can afford.
//
// # Role in the pipeline
//
// Every figure generator and ablation in internal/harness, plus
// cmd/cachesweep, cmd/benchtables and cmd/attackcost, is a sweep over
// scenario cells; each cell typically runs one harness.Experiment or
// dircache distribution. The facade re-exports the engine as
// partialtor.SweepGrid / partialtor.RunSweep / partialtor.RunSweepCtx with
// axis constructors (SweepInts, SweepFloats, SweepDurations) and flag
// parsers (ParseSweepCounts, ParseSweepFloats) for the cmd tools.
//
// # Execution model
//
// A Grid is the cartesian product of named Axes, enumerated row-major (the
// first axis varies slowest, exactly like the nested loops it replaces). Run
// evaluates a callback on every cell with a bounded worker pool and returns
// the results ordered by cell rank — independent of completion order, so a
// parallel sweep renders byte-identically to a serial one. Failures are
// captured per cell (including recovered panics) instead of aborting the
// sweep: one bad configuration costs one cell, not the whole table. RunCtx
// adds cancellation: a cancelled context stops dispatching new cells while
// keeping every completed cell's result, so an interrupted 10k-cell sweep
// hands back the work it already did.
//
// # Error accounting
//
// A cell ends in exactly one of three states: a value, a genuine failure
// (its Err), or skipped by cancellation (Err wraps ErrCellSkipped). FirstErr
// reports only genuine failures; Skipped counts the cancelled remainder —
// together they let a caller distinguish "failed", "cancelled but clean"
// and "complete" without probing each cell.
package sweep
