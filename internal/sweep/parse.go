package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseInts parses a comma-separated integer list ("10,20,40") into axis
// values, reporting the offending element — empty elements included, e.g.
// "10,,40" — instead of a bare strconv error. Sweep axes are usually CLI
// flags; every command shares this one parser.
func ParseInts(s string) ([]int, error) {
	var out []int
	for i, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("element %d (%q) of %q: %v", i+1, f, s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParsePositiveInts is ParseInts for axes of counts, where zero or
// negative values are configuration errors (cache counts, populations,
// target counts).
func ParsePositiveInts(s string) ([]int, error) {
	out, err := ParseInts(s)
	if err != nil {
		return nil, err
	}
	for _, v := range out {
		if v < 1 {
			return nil, fmt.Errorf("count %d in %q must be >= 1", v, s)
		}
	}
	return out, nil
}

// ParseFloats is ParseInts for float axes ("0.5,1,2.5").
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for i, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("element %d (%q) of %q: %v", i+1, f, s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
