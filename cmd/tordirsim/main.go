// Command tordirsim runs one directory-protocol scenario on the simulator:
// choose a protocol, a relay count, authority bandwidth and (optionally) a
// DDoS attack window, and observe whether a consensus document is produced
// and how long it takes.
//
// Examples:
//
//	tordirsim -protocol current -relays 8000
//	tordirsim -protocol current -relays 8000 -attack -attack-minutes 5
//	tordirsim -protocol ours -relays 8000 -bandwidth 0.5
//	tordirsim -protocol current -attack -trace trace.json   # chrome://tracing
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"partialtor"
	"partialtor/internal/simnet"
)

func main() {
	var (
		protoName     = flag.String("protocol", "ours", "protocol: current | synchronous | ours")
		relays        = flag.Int("relays", 8000, "number of relays in the synthetic population")
		bandwidthMbit = flag.Float64("bandwidth", 250, "authority access bandwidth in Mbit/s")
		round         = flag.Duration("round", 150*time.Second, "lock-step round length (baselines)")
		doAttack      = flag.Bool("attack", false, "throttle the majority of the authorities")
		attackMinutes = flag.Float64("attack-minutes", 5, "attack window length in minutes")
		residualMbit  = flag.Float64("attack-residual", 0.5, "bandwidth left to attacked authorities (Mbit/s); 0 = offline")
		seed          = flag.Int64("seed", 1, "simulation seed")
		showLog       = flag.Int("log", -1, "print the protocol log of this authority (-1 = none)")
		tracePath     = flag.String("trace", "", "write a Chrome trace of the run (chrome://tracing, Perfetto)")
	)
	flag.Parse()

	var proto partialtor.Protocol
	switch strings.ToLower(*protoName) {
	case "current", "dirv3":
		proto = partialtor.Current
	case "synchronous", "sync", "luo":
		proto = partialtor.Synchronous
	case "ours", "icps", "partial":
		proto = partialtor.ICPS
	default:
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protoName)
		os.Exit(2)
	}

	s := partialtor.Scenario{
		Protocol:     proto,
		Relays:       *relays,
		EntryPadding: -1,
		Bandwidth:    *bandwidthMbit * 1e6,
		Round:        *round,
		Seed:         *seed,
	}
	var rec *partialtor.TraceRecorder
	if *tracePath != "" {
		rec = partialtor.NewTraceRecorder(1 << 20)
		s.Tracer = rec
	}
	if *doAttack {
		plan := partialtor.AttackPlan{
			Targets:  partialtor.MajorityTargets(9),
			Start:    0,
			End:      time.Duration(*attackMinutes * float64(time.Minute)),
			Residual: *residualMbit * 1e6,
		}
		s.Attack = &plan
		fmt.Printf("attack: %d targets, window %v, residual %.2f Mbit/s\n",
			len(plan.Targets), plan.End, plan.Residual/1e6)
	}

	fmt.Printf("running %v with %d relays at %.2f Mbit/s (seed %d)...\n",
		proto, *relays, *bandwidthMbit, *seed)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := partialtor.RunE(ctx, s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tordirsim: %v\n", err)
		os.Exit(1)
	}

	if res.Success {
		fmt.Printf("SUCCESS: consensus generated, network-time latency %.1fs\n", res.Latency.Seconds())
	} else {
		fmt.Println("FAILURE: no valid consensus document this period")
	}
	fmt.Printf("transport: %d messages, %.2f MB sent\n", res.Messages, float64(res.BytesSent)/1e6)
	if rec != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tordirsim: %v\n", err)
			os.Exit(1)
		}
		werr := partialtor.WriteChromeTrace(f, rec.Events())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "tordirsim: writing %s: %v\n", *tracePath, werr)
			os.Exit(1)
		}
		fmt.Printf("trace: %d events -> %s\n", rec.Len(), *tracePath)
	}
	if *showLog >= 0 && *showLog < 9 {
		fmt.Printf("\n--- authority %d log ---\n", *showLog)
		for _, e := range res.Net.NodeLog(simnet.NodeID(*showLog)) {
			fmt.Printf("%10.3fs [%s] %s\n", e.At.Seconds(), e.Level, e.Text)
		}
	}
	if !res.Success {
		os.Exit(1)
	}
}
