// Command tordirsim runs one directory-protocol scenario on the simulator:
// choose a protocol, a relay count, authority bandwidth and (optionally) a
// DDoS attack window, and observe whether a consensus document is produced
// and how long it takes.
//
// With -clients the run continues into the distribution phase: the consensus
// fans out through directory caches to a synthetic client population. On
// -topology continents both tiers sit on the builtin continental map and the
// report gains a per-region coverage/p50/p99 breakdown; -race K makes each
// client race its fetch against K caches (first response wins).
//
// The chaos flags stress the distribution tier: -crash F crashes that
// fraction of the mirrors mid-window (state lost, restart and re-fetch),
// -churn F makes that fraction leave and rejoin the gossip mesh (-gossip N
// meshes the tier with push fanout N), and -backoff switches the fleets to
// capped seeded-jitter exponential retry backoff. The report then carries
// the graceful-degradation numbers: fault events, time below target
// coverage, worst MTTR.
//
// Examples:
//
//	tordirsim -protocol current -relays 8000
//	tordirsim -protocol current -relays 8000 -attack -attack-minutes 5
//	tordirsim -protocol ours -relays 8000 -bandwidth 0.5
//	tordirsim -protocol ours -clients 100000 -topology continents -race 2
//	tordirsim -protocol ours -clients 100000 -gossip 3 -crash 0.3 -churn 0.2 -backoff
//	tordirsim -protocol current -attack -trace trace.json   # chrome://tracing
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"partialtor"
	"partialtor/internal/simnet"
)

// fmtCoverageTime renders a time-to-coverage value; Never means the fraction
// was not reached within the fetch window.
func fmtCoverageTime(d time.Duration) string {
	if d == partialtor.Never {
		return "never"
	}
	return d.Round(time.Second).String()
}

func main() {
	var (
		protoName     = flag.String("protocol", "ours", "protocol: current | synchronous | ours")
		relays        = flag.Int("relays", 8000, "number of relays in the synthetic population")
		bandwidthMbit = flag.Float64("bandwidth", 250, "authority access bandwidth in Mbit/s")
		round         = flag.Duration("round", 150*time.Second, "lock-step round length (baselines)")
		doAttack      = flag.Bool("attack", false, "throttle the majority of the authorities")
		attackMinutes = flag.Float64("attack-minutes", 5, "attack window length in minutes")
		residualMbit  = flag.Float64("attack-residual", 0.5, "bandwidth left to attacked authorities (Mbit/s); 0 = offline")
		seed          = flag.Int64("seed", 1, "simulation seed")
		topoName      = flag.String("topology", "flat", "topology: flat or continents")
		clients       = flag.Int("clients", 0, "run the distribution phase with this many clients (0 = skip)")
		caches        = flag.Int("caches", 20, "directory caches in the distribution phase")
		raceK         = flag.Int("race", 0, "racing-client width K (0 = legacy client)")
		gossipFanout  = flag.Int("gossip", 0, "mesh the cache tier with this push fanout (0 = star topology)")
		crashFrac     = flag.Float64("crash", 0, "crash this fraction of the mirrors mid-window (0 = none)")
		churnFrac     = flag.Float64("churn", 0, "churn this fraction of the mesh membership (0 = none; needs -gossip)")
		backoffOn     = flag.Bool("backoff", false, "fleets retry with capped seeded-jitter exponential backoff")
		showLog       = flag.Int("log", -1, "print the protocol log of this authority (-1 = none)")
		tracePath     = flag.String("trace", "", "write a Chrome trace of the run (chrome://tracing, Perfetto)")
	)
	flag.Parse()

	var proto partialtor.Protocol
	switch strings.ToLower(*protoName) {
	case "current", "dirv3":
		proto = partialtor.Current
	case "synchronous", "sync", "luo":
		proto = partialtor.Synchronous
	case "ours", "icps", "partial":
		proto = partialtor.ICPS
	default:
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protoName)
		os.Exit(2)
	}

	topology, err := partialtor.TopologyByName(*topoName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tordirsim: %v\n", err)
		os.Exit(2)
	}
	s := partialtor.Scenario{
		Protocol:     proto,
		Relays:       *relays,
		EntryPadding: -1,
		Bandwidth:    *bandwidthMbit * 1e6,
		Round:        *round,
		Seed:         *seed,
		Topology:     topology,
	}
	if *clients > 0 {
		s.Distribution = &partialtor.DistributionSpec{
			Clients: *clients,
			Caches:  *caches,
			Seed:    *seed,
			RaceK:   *raceK,
		}
		if *gossipFanout > 0 {
			s.Distribution.Gossip = &partialtor.GossipConfig{
				Fanout: *gossipFanout,
				Seeds:  partialtor.FirstTargets(1),
			}
		}
		if *backoffOn {
			// The zero value selects the backoff defaults at validation.
			s.Distribution.Backoff = &partialtor.RetryBackoff{}
		}
		// The default fetch window, against which the fault windows sit: the
		// crash hits once the tier is warm and clears mid-run, the churn
		// overlaps it and stretches to the window's midpoint.
		const window = 30 * time.Minute
		var plan partialtor.FaultPlan
		if *crashFrac > 0 {
			if *crashFrac > 1 {
				fmt.Fprintf(os.Stderr, "tordirsim: -crash %g outside [0, 1]\n", *crashFrac)
				os.Exit(2)
			}
			n := max(1, int(*crashFrac*float64(*caches)+0.5))
			plan.Faults = append(plan.Faults, partialtor.FaultSpec{
				Kind:    partialtor.FaultCrash,
				Tier:    partialtor.TierCache,
				Targets: partialtor.SpreadTargets(1, *caches, n),
				Start:   window / 6,
				End:     window/6 + window/4,
			})
		}
		if *churnFrac > 0 {
			if *churnFrac > 1 {
				fmt.Fprintf(os.Stderr, "tordirsim: -churn %g outside [0, 1]\n", *churnFrac)
				os.Exit(2)
			}
			if *gossipFanout <= 0 {
				fmt.Fprintln(os.Stderr, "tordirsim: -churn needs -gossip: churn is mirrors leaving the mesh")
				os.Exit(2)
			}
			n := max(1, int(*churnFrac*float64(*caches)+0.5))
			plan.Faults = append(plan.Faults, partialtor.FaultSpec{
				Kind:    partialtor.FaultChurn,
				Tier:    partialtor.TierCache,
				Targets: partialtor.SpreadTargets(2, *caches, n),
				Start:   window / 4,
				End:     window / 2,
			})
		}
		if len(plan.Faults) > 0 {
			s.Faults = &plan
		}
	} else if *raceK > 0 || *gossipFanout > 0 || *crashFrac > 0 || *churnFrac > 0 || *backoffOn {
		fmt.Fprintln(os.Stderr, "tordirsim: -race, -gossip, -crash, -churn and -backoff need a distribution phase; set -clients")
		os.Exit(2)
	}
	var rec *partialtor.TraceRecorder
	if *tracePath != "" {
		rec = partialtor.NewTraceRecorder(1 << 20)
		s.Tracer = rec
	}
	if *doAttack {
		plan := partialtor.AttackPlan{
			Targets:  partialtor.MajorityTargets(9),
			Start:    0,
			End:      time.Duration(*attackMinutes * float64(time.Minute)),
			Residual: *residualMbit * 1e6,
		}
		s.Attack = &plan
		fmt.Printf("attack: %d targets, window %v, residual %.2f Mbit/s\n",
			len(plan.Targets), plan.End, plan.Residual/1e6)
	}

	fmt.Printf("running %v with %d relays at %.2f Mbit/s (seed %d)...\n",
		proto, *relays, *bandwidthMbit, *seed)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := partialtor.RunE(ctx, s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tordirsim: %v\n", err)
		os.Exit(1)
	}

	if res.Success {
		fmt.Printf("SUCCESS: consensus generated, network-time latency %.1fs\n", res.Latency.Seconds())
	} else {
		fmt.Println("FAILURE: no valid consensus document this period")
	}
	fmt.Printf("transport: %d messages, %.2f MB sent\n", res.Messages, float64(res.BytesSent)/1e6)
	if d := res.Distribution; d != nil {
		fmt.Printf("distribution: %s\n", d.Summary())
		for _, rc := range d.Regions {
			fmt.Printf("  region %-4s clients %-9d coverage %5.1f%%  p50 %-10s p99 %s\n",
				rc.Name, rc.Clients, 100*rc.Coverage(),
				fmtCoverageTime(rc.P50), fmtCoverageTime(rc.P99))
		}
	}
	if rec != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tordirsim: %v\n", err)
			os.Exit(1)
		}
		werr := partialtor.WriteChromeTrace(f, rec.Events())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "tordirsim: writing %s: %v\n", *tracePath, werr)
			os.Exit(1)
		}
		fmt.Printf("trace: %d events -> %s\n", rec.Len(), *tracePath)
	}
	if *showLog >= 0 && *showLog < 9 {
		fmt.Printf("\n--- authority %d log ---\n", *showLog)
		for _, e := range res.Net.NodeLog(simnet.NodeID(*showLog)) {
			fmt.Printf("%10.3fs [%s] %s\n", e.At.Seconds(), e.Level, e.Text)
		}
	}
	if !res.Success {
		os.Exit(1)
	}
}
