// Command benchtables regenerates every table and figure of the paper's
// evaluation as text tables:
//
//	Figure 1  — authority log under the 5-authority attack
//	Figure 6  — relay-count time series (avg 7141.79)
//	Figure 7  — bandwidth requirement vs. relay count (5 attacked)
//	Figure 10 — latency of the three protocols across bandwidths
//	Figure 11 — recovery after the 5-minute outage
//	Table 1   — design comparison with measured transport cost
//	Table 2   — sub-protocol round counts
//	Cost      — §4.3 attack pricing
//
// By default everything runs at paper scale (150s rounds, up to 10000
// relays), which takes a few minutes; -quick shrinks the sweeps for a fast
// smoke pass. Select individual artifacts with -only. Every sweep fans its
// grid out over -workers goroutines (default: all cores) on the shared
// sweep engine; the rendered tables are byte-identical for any worker
// count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"partialtor"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "run reduced sweeps (seconds instead of minutes)")
		only    = flag.String("only", "", "comma-separated subset: fig1,fig6,fig7,fig10,fig11,tab1,tab2,cost")
		workers = flag.Int("workers", 0, "sweep worker pool (0 = all cores, 1 = serial)")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	if sel("fig6") {
		fmt.Println(partialtor.Figure6().Render())
	}
	if sel("cost") {
		fmt.Println(partialtor.CostTable().Render())
	}
	if sel("tab2") {
		fmt.Println(partialtor.Table2().Render())
	}
	if sel("fig1") {
		p := partialtor.Figure1Params{}
		if *quick {
			p = partialtor.Figure1Params{Relays: 400, Round: 15 * time.Second, Residual: 5e3}
		}
		fmt.Println(partialtor.Figure1(p).Render())
	}
	if sel("tab1") {
		p := partialtor.Table1Params{}
		if *quick {
			p = partialtor.Table1Params{Relays: 300, Bandwidth: 100e6, Round: 20 * time.Second}
		}
		p.Workers = *workers
		fmt.Println(partialtor.Table1(p).Render())
	}
	if sel("fig7") {
		p := partialtor.Figure7Params{}
		if *quick {
			p = partialtor.Figure7Params{
				RelayCounts: []int{200, 600, 1200},
				Round:       15 * time.Second,
				MaxMbit:     60,
				Precision:   0.5,
			}
		}
		p.Workers = *workers
		fmt.Println(partialtor.Figure7(p).Render())
	}
	if sel("fig10") {
		p := partialtor.Figure10Params{}
		if *quick {
			p = partialtor.Figure10Params{
				BandwidthsMbit: []float64{100, 10, 1},
				RelayCounts:    []int{300, 900, 1500},
				Round:          15 * time.Second,
			}
		}
		p.Workers = *workers
		fmt.Println(partialtor.Figure10(p).Render())
	}
	if sel("fig11") {
		p := partialtor.Figure11Params{}
		if *quick {
			p = partialtor.Figure11Params{RelayCounts: []int{200, 800}, Outage: time.Minute}
		}
		p.Workers = *workers
		fmt.Println(partialtor.Figure11(p).Render())
	}
	if sel("ablation") {
		es := partialtor.EntrySizeParams{}
		dp := partialtor.DeltaParams{}
		tp := partialtor.TimeoutParams{}
		if *quick {
			es = partialtor.EntrySizeParams{
				EntrySizes:    []int{625, 2500},
				RelayCounts:   []int{500, 1000, 2000, 4000, 8000},
				BandwidthMbit: 10,
				Round:         15 * time.Second,
			}
			dp = partialtor.DeltaParams{Relays: 200}
			tp = partialtor.TimeoutParams{Outage: 30 * time.Second, Relays: 150}
		}
		es.Workers, dp.Workers, tp.Workers = *workers, *workers, *workers
		fmt.Println(partialtor.AblationEntrySize(es).Render())
		fmt.Println(partialtor.AblationDelta(dp).Render())
		fmt.Println(partialtor.AblationTimeout(tp).Render())
	}
	if len(want) > 0 {
		for k := range want {
			switch k {
			case "fig1", "fig6", "fig7", "fig10", "fig11", "tab1", "tab2", "cost", "ablation":
			default:
				fmt.Fprintf(os.Stderr, "unknown artifact %q\n", k)
				os.Exit(2)
			}
		}
	}
}
