// Command benchtables regenerates every table and figure of the paper's
// evaluation as text tables:
//
//	Figure 1  — authority log under the 5-authority attack
//	Figure 6  — relay-count time series (avg 7141.79)
//	Figure 7  — bandwidth requirement vs. relay count (5 attacked)
//	Figure 10 — latency of the three protocols across bandwidths
//	Figure 11 — recovery after the 5-minute outage
//	Table 1   — design comparison with measured transport cost
//	Table 2   — sub-protocol round counts
//	Cost      — §4.3 attack pricing
//	Regional  — racing clients vs a regional mirror flood (continents)
//	Gossip    — cache mesh vs a total authority flood, with partition pricing
//
// By default everything runs at paper scale (150s rounds, up to 10000
// relays), which takes a few minutes; -quick shrinks the sweeps for a fast
// smoke pass. Select individual artifacts with -only. Every sweep fans its
// grid out over -workers goroutines (default: all cores) on the shared
// sweep engine; the rendered tables are byte-identical for any worker
// count, and each sweep reports live cell progress to stderr. Ctrl-C
// cancels the run cleanly between sweep cells.
//
// -json additionally writes BENCH_tables.json: per-artifact wall time, the
// simulation-kernel cost (events executed, events/sec, heap allocations
// aggregated over the artifact's sweep workers) and the headline metrics
// (latencies, requirements, costs), so the repo's performance trajectory is
// tracked run over run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"partialtor"
)

// artifact is one regenerable piece of the evaluation: its renderer plus
// the headline metrics the JSON report tracks.
type artifact struct {
	name string
	run  func(ctx context.Context) (render string, metrics map[string]float64, err error)
}

// kernelRecord is the simulation-kernel cost of one artifact: how many
// events its scenarios executed, the resulting throughput, and the heap
// churn (runtime.MemStats deltas). This is the repo's perf trajectory — the
// numbers future kernel optimizations are measured against.
type kernelRecord struct {
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Mallocs      uint64  `json:"mallocs"`
	AllocBytes   uint64  `json:"alloc_bytes"`
}

// benchRecord is one artifact's entry in BENCH_tables.json.
type benchRecord struct {
	Name    string             `json:"name"`
	WallMS  float64            `json:"wall_ms"`
	Kernel  kernelRecord       `json:"kernel"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// measureKernel snapshots the process-wide kernel counters; calling the
// returned function yields the deltas since the snapshot.
func measureKernel() func(wall time.Duration) kernelRecord {
	steps0 := partialtor.KernelSteps()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	return func(wall time.Duration) kernelRecord {
		var ms1 runtime.MemStats
		runtime.ReadMemStats(&ms1)
		rec := kernelRecord{
			Events:     partialtor.KernelSteps() - steps0,
			Mallocs:    ms1.Mallocs - ms0.Mallocs,
			AllocBytes: ms1.TotalAlloc - ms0.TotalAlloc,
		}
		if s := wall.Seconds(); s > 0 {
			rec.EventsPerSec = float64(rec.Events) / s
		}
		return rec
	}
}

// benchReport is the file's top-level shape.
type benchReport struct {
	GeneratedBy string        `json:"generated_by"`
	Quick       bool          `json:"quick"`
	Workers     int           `json:"workers"`
	TotalMS     float64       `json:"total_ms"`
	Artifacts   []benchRecord `json:"artifacts"`
}

func main() {
	var (
		quick    = flag.Bool("quick", false, "run reduced sweeps (seconds instead of minutes)")
		only     = flag.String("only", "", "comma-separated subset: fig1,fig6,fig7,fig10,fig11,tab1,tab2,cost,regional,gossip,ablation")
		workers  = flag.Int("workers", 0, "sweep worker pool (0 = all cores, 1 = serial)")
		jsonOut  = flag.Bool("json", false, "write BENCH_tables.json with per-artifact wall time + headline metrics")
		jsonPath = flag.String("json-path", "BENCH_tables.json", "where -json writes the report")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	artifacts := buildArtifacts(*quick, *workers)
	want := map[string]bool{}
	if *only != "" {
		known := map[string]bool{}
		for _, a := range artifacts {
			known[a.name] = true
		}
		for _, k := range strings.Split(*only, ",") {
			k = strings.TrimSpace(strings.ToLower(k))
			if !known[k] {
				fmt.Fprintf(os.Stderr, "unknown artifact %q\n", k)
				os.Exit(2)
			}
			want[k] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	report := benchReport{GeneratedBy: "benchtables", Quick: *quick, Workers: *workers}
	start := time.Now()
	for _, a := range artifacts {
		if !sel(a.name) {
			continue
		}
		t0 := time.Now()
		kernel := measureKernel()
		render, metrics, err := a.run(ctx)
		wall := time.Since(t0)
		if err != nil {
			// A failed (or Ctrl-C'd) artifact must not discard the wall
			// times already measured, nor leave a stale report lying about
			// this build: flush what completed before exiting.
			fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", a.name, err)
			report.TotalMS = float64(time.Since(start).Microseconds()) / 1e3
			if *jsonOut {
				writeReport(*jsonPath, report)
			}
			os.Exit(1)
		}
		fmt.Println(render)
		report.Artifacts = append(report.Artifacts, benchRecord{
			Name:    a.name,
			WallMS:  float64(wall.Microseconds()) / 1e3,
			Kernel:  kernel(wall),
			Metrics: metrics,
		})
	}
	report.TotalMS = float64(time.Since(start).Microseconds()) / 1e3

	if *jsonOut {
		if !writeReport(*jsonPath, report) {
			os.Exit(1)
		}
	}
}

// writeReport writes the JSON perf report, reporting success.
func writeReport(path string, report benchReport) bool {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtables: marshal report: %v\n", err)
		return false
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchtables: write %s: %v\n", path, err)
		return false
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d artifacts)\n", path, len(report.Artifacts))
	return true
}

// progressFor returns a sweep progress callback that keeps one live
// "name: done/total cells" line on stderr for the named artifact.
func progressFor(name string) func(done, total int, cellErr error) {
	return func(done, total int, cellErr error) {
		mark := ""
		if cellErr != nil {
			mark = " (error)"
		}
		fmt.Fprintf(os.Stderr, "%s: %d/%d cells%s", name, done, total, mark)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// buildArtifacts assembles the artifact list at the requested scale. The
// order matches the paper's presentation (cheap artifacts first).
func buildArtifacts(quick bool, workers int) []artifact {
	return []artifact{
		{name: "fig6", run: func(context.Context) (string, map[string]float64, error) {
			r := partialtor.Figure6()
			return r.Render(), map[string]float64{"avg_relays": r.Average}, nil
		}},
		{name: "cost", run: func(context.Context) (string, map[string]float64, error) {
			r := partialtor.CostTable()
			return r.Render(), map[string]float64{
				"usd_per_instance": r.CostPerInstance,
				"usd_per_month":    r.CostPerMonth,
			}, nil
		}},
		{name: "tab2", run: func(ctx context.Context) (string, map[string]float64, error) {
			r, err := partialtor.Table2(ctx)
			if err != nil {
				return "", nil, err
			}
			return r.Render(), map[string]float64{"rounds_total": float64(r.Total)}, nil
		}},
		{name: "fig1", run: func(ctx context.Context) (string, map[string]float64, error) {
			p := partialtor.Figure1Params{}
			if quick {
				p = partialtor.Figure1Params{Relays: 400, Round: 15 * time.Second, Residual: 5e3}
			}
			r, err := partialtor.Figure1(ctx, p)
			if err != nil {
				return "", nil, err
			}
			return r.Render(), map[string]float64{
				"log_lines":      float64(len(r.Lines)),
				"attack_success": boolMetric(!r.Run.Success),
			}, nil
		}},
		{name: "tab1", run: func(ctx context.Context) (string, map[string]float64, error) {
			p := partialtor.Table1Params{}
			if quick {
				p = partialtor.Table1Params{Relays: 300, Bandwidth: 100e6, Round: 20 * time.Second}
			}
			p.Workers = workers
			p.OnCell = progressFor("tab1")
			r, err := partialtor.Table1(ctx, p)
			if err != nil {
				return "", nil, err
			}
			metrics := map[string]float64{}
			for _, row := range r.Rows {
				key := strings.ToLower(row.Protocol.String())
				metrics[key+"_bytes"] = float64(row.MeasuredBytes)
				metrics[key+"_messages"] = float64(row.MeasuredMessages)
			}
			return r.Render(), metrics, nil
		}},
		{name: "fig7", run: func(ctx context.Context) (string, map[string]float64, error) {
			p := partialtor.Figure7Params{}
			if quick {
				p = partialtor.Figure7Params{
					RelayCounts: []int{200, 600, 1200},
					Round:       15 * time.Second,
					MaxMbit:     60,
					Precision:   0.5,
				}
			}
			p.Workers = workers
			p.OnCell = progressFor("fig7")
			r, err := partialtor.Figure7(ctx, p)
			if err != nil {
				return "", nil, err
			}
			// RequiredMbit < 0 is the "above the search ceiling" sentinel,
			// not a bandwidth; track those rows separately so the report
			// never plots -1 as a requirement.
			metrics := map[string]float64{}
			maxReq, unbounded := -1.0, 0
			for _, row := range r.Rows {
				if row.RequiredMbit < 0 {
					unbounded++
				} else if row.RequiredMbit > maxReq {
					maxReq = row.RequiredMbit
				}
			}
			if maxReq >= 0 {
				metrics["max_required_mbit"] = maxReq
			}
			metrics["above_ceiling_rows"] = float64(unbounded)
			return r.Render(), metrics, nil
		}},
		{name: "fig10", run: func(ctx context.Context) (string, map[string]float64, error) {
			p := partialtor.Figure10Params{}
			if quick {
				p = partialtor.Figure10Params{
					BandwidthsMbit: []float64{100, 10, 1},
					RelayCounts:    []int{300, 900, 1500},
					Round:          15 * time.Second,
				}
			}
			p.Workers = workers
			p.OnCell = progressFor("fig10")
			r, err := partialtor.Figure10(ctx, p)
			if err != nil {
				return "", nil, err
			}
			failures := 0
			for _, c := range r.Cells {
				if !c.Success {
					failures++
				}
			}
			return r.Render(), map[string]float64{
				"cells":        float64(len(r.Cells)),
				"failed_cells": float64(failures),
			}, nil
		}},
		{name: "fig11", run: func(ctx context.Context) (string, map[string]float64, error) {
			p := partialtor.Figure11Params{}
			if quick {
				p = partialtor.Figure11Params{RelayCounts: []int{200, 800}, Outage: time.Minute}
			}
			p.Workers = workers
			p.OnCell = progressFor("fig11")
			r, err := partialtor.Figure11(ctx, p)
			if err != nil {
				return "", nil, err
			}
			// Recovery == Never is a sentinel, not an instant recovery:
			// only report max_recovery_s over rows that recovered, and
			// count the rest so the trajectory can't read a total failure
			// as a perfect run.
			metrics := map[string]float64{"baseline_s": partialtor.FallbackLatency.Seconds()}
			worst, neverRecovered := time.Duration(-1), 0
			for _, row := range r.Rows {
				if row.Recovery == partialtor.Never {
					neverRecovered++
				} else if row.Recovery > worst {
					worst = row.Recovery
				}
			}
			if worst >= 0 {
				metrics["max_recovery_s"] = worst.Seconds()
			}
			metrics["never_recovered_rows"] = float64(neverRecovered)
			return r.Render(), metrics, nil
		}},
		{name: "regional", run: func(ctx context.Context) (string, map[string]float64, error) {
			p := partialtor.RegionalParams{}
			if quick {
				p = partialtor.RegionalParams{
					Clients: 50_000,
					Caches:  12,
					Window:  20 * time.Minute,
				}
			}
			p.Workers = workers
			p.OnCell = progressFor("regional")
			r, err := partialtor.RegionalTable(ctx, p)
			if err != nil {
				return "", nil, err
			}
			// Track each flooded cell's coverage and the racing overhead;
			// T99 == Never is a sentinel, so only report reached cells.
			metrics := map[string]float64{}
			for _, row := range r.Rows {
				if !row.Flood {
					continue
				}
				key := fmt.Sprintf("flood_k%d", row.RaceK)
				metrics[key+"_coverage"] = row.Coverage
				if row.T99 != partialtor.Never {
					metrics[key+"_t99_s"] = row.T99.Seconds()
				}
				metrics[key+"_waste_mb"] = float64(row.WasteBytes) / 1e6
			}
			return r.Render(), metrics, nil
		}},
		{name: "gossip", run: func(ctx context.Context) (string, map[string]float64, error) {
			p := partialtor.GossipParams{}
			if quick {
				p = partialtor.GossipParams{
					Clients: 5_000,
					Caches:  20,
					Fanouts: []int{3},
				}
			}
			p.Workers = workers
			p.OnCell = progressFor("gossip")
			r, err := partialtor.GossipTable(ctx, p)
			if err != nil {
				return "", nil, err
			}
			// Track the baseline's stranding and each mesh cell's recovery;
			// T95 == Never is a sentinel, so only report reached cells.
			metrics := map[string]float64{}
			for _, row := range r.Rows {
				key := fmt.Sprintf("fanout%d", row.Fanout)
				if row.Fanout < 0 {
					key = "baseline"
				}
				metrics[key+"_coverage"] = row.Coverage
				if row.T95 != partialtor.Never {
					metrics[key+"_t95_s"] = row.T95.Seconds()
				}
				if row.Fanout >= 0 {
					metrics[key+"_mesh_mb"] = float64(row.MeshBytes) / 1e6
					metrics[key+"_partition_usd"] = row.PartitionCost
				}
			}
			return r.Render(), metrics, nil
		}},
		{name: "ablation", run: func(ctx context.Context) (string, map[string]float64, error) {
			es := partialtor.EntrySizeParams{}
			dp := partialtor.DeltaParams{}
			tp := partialtor.TimeoutParams{}
			if quick {
				es = partialtor.EntrySizeParams{
					EntrySizes:    []int{625, 2500},
					RelayCounts:   []int{500, 1000, 2000, 4000, 8000},
					BandwidthMbit: 10,
					Round:         15 * time.Second,
				}
				dp = partialtor.DeltaParams{Relays: 200}
				tp = partialtor.TimeoutParams{Outage: 30 * time.Second, Relays: 150}
			}
			es.Workers, dp.Workers, tp.Workers = workers, workers, workers
			es.OnCell = progressFor("ablation/entry-size")
			dp.OnCell = progressFor("ablation/delta")
			tp.OnCell = progressFor("ablation/timeout")
			esr, err := partialtor.AblationEntrySize(ctx, es)
			if err != nil {
				return "", nil, err
			}
			dpr, err := partialtor.AblationDelta(ctx, dp)
			if err != nil {
				return "", nil, err
			}
			tpr, err := partialtor.AblationTimeout(ctx, tp)
			if err != nil {
				return "", nil, err
			}
			out := esr.Render() + "\n" + dpr.Render() + "\n" + tpr.Render()
			return out, nil, nil
		}},
	}
}

// boolMetric folds a verdict into the numeric metrics map.
func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
