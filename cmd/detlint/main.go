// Command detlint is the multichecker for the repo's determinism and
// hot-path invariants (internal/analysis): maporder, wallclock, hotpath
// and tracerguard.
//
// It speaks the cmd/go vet-tool protocol, so the canonical invocation is
//
//	go build -o bin/detlint ./cmd/detlint
//	go vet -vettool=$(pwd)/bin/detlint ./...
//
// which runs every analyzer over every package (test variants included)
// with cmd/go's caching. It also runs standalone — `detlint ./...` —
// loading packages via `go list -export`. Run `detlint help` for the
// analyzer list and the waiver syntax.
package main

import (
	"os"

	"partialtor/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:]))
}
