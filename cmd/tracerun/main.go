// Command tracerun runs one directory-protocol scenario with the
// observability layer on: it records the full event stream — kernel
// transfers and per-pipe samples, protocol phases, votes and timeouts,
// attack windows — and exports it as a Chrome trace (-trace, load in
// chrome://tracing or https://ui.perfetto.dev) and/or a JSONL metrics log
// (-metrics). With -detect it additionally feeds the stream through the
// Danner-style detector and reports the attack-detection latency from the
// victim's chair: how long after the flood began the attacked authorities'
// own pipe baselines flagged it, and how far ahead of the consensus loss
// that is.
//
// The default scenario is the paper's Figure-10 flood: the current
// protocol, 8000 relays, a five-minute majority flood from t=0. The flood
// slows the initial vote exchange to a crawl; the detector's baselines
// absorb that crawl as "normal" but the round-boundary traffic piling onto
// the still-throttled pipes deviates hard, so the victims flag the attack
// hundreds of seconds before the v3 monitor declares the consensus lost.
//
// Examples:
//
//	tracerun -trace trace.json
//	tracerun -detect
//	tracerun -protocol ours -metrics events.jsonl -detect
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"partialtor"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracerun: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		protoName     = flag.String("protocol", "current", "protocol: current | synchronous | ours")
		relays        = flag.Int("relays", 8000, "number of relays in the synthetic population")
		bandwidthMbit = flag.Float64("bandwidth", 250, "authority access bandwidth in Mbit/s")
		round         = flag.Duration("round", 150*time.Second, "lock-step round length (baselines)")
		seed          = flag.Int64("seed", 1, "simulation seed")
		noAttack      = flag.Bool("no-attack", false, "trace a healthy run instead of the flood")
		attackStart   = flag.Duration("attack-start", 0, "flood onset")
		attackMinutes = flag.Float64("attack-minutes", 5, "flood window length in minutes")
		residualMbit  = flag.Float64("attack-residual", 0.5, "bandwidth left to flooded authorities (Mbit/s)")
		tracePath     = flag.String("trace", "", "write a Chrome trace (chrome://tracing, Perfetto) to this file")
		metricsPath   = flag.String("metrics", "", "write the event stream as JSONL to this file")
		detect        = flag.Bool("detect", false, "run the flood detector and report detection latency")
		events        = flag.Int("events", 1<<20, "recorder capacity (oldest events beyond it are dropped)")
	)
	flag.Parse()

	var proto partialtor.Protocol
	switch strings.ToLower(*protoName) {
	case "current", "dirv3":
		proto = partialtor.Current
	case "synchronous", "sync", "luo":
		proto = partialtor.Synchronous
	case "ours", "icps", "partial":
		proto = partialtor.ICPS
	default:
		fatalf("unknown protocol %q", *protoName)
	}
	if *tracePath == "" && *metricsPath == "" && !*detect {
		fatalf("nothing to do: give -trace, -metrics or -detect")
	}

	// Assemble the tracer pipeline: a recorder for the export sinks, a
	// detector when asked. Tee drops the nils.
	var rec *partialtor.TraceRecorder
	if *tracePath != "" || *metricsPath != "" {
		rec = partialtor.NewTraceRecorder(*events)
	}
	var det *partialtor.Detector
	if *detect {
		det = partialtor.NewDetector(partialtor.DetectorConfig{})
	}
	var sinks []partialtor.Tracer
	if rec != nil {
		sinks = append(sinks, rec)
	}
	if det != nil {
		sinks = append(sinks, det)
	}
	tracer := partialtor.TraceTee(sinks...)

	s := partialtor.Scenario{
		Protocol:     proto,
		Relays:       *relays,
		EntryPadding: -1,
		Bandwidth:    *bandwidthMbit * 1e6,
		Round:        *round,
		Seed:         *seed,
		Tracer:       tracer,
	}
	if !*noAttack {
		plan := partialtor.AttackPlan{
			Targets:  partialtor.MajorityTargets(9),
			Start:    *attackStart,
			End:      *attackStart + time.Duration(*attackMinutes*float64(time.Minute)),
			Residual: *residualMbit * 1e6,
		}
		s.Attack = &plan
		fmt.Printf("flood: %d targets, window %v..%v, residual %.2f Mbit/s\n",
			len(plan.Targets), plan.Start, plan.End, plan.Residual/1e6)
	}

	fmt.Printf("running %v with %d relays at %.2f Mbit/s (seed %d)...\n",
		proto, *relays, *bandwidthMbit, *seed)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := partialtor.RunE(ctx, s)
	if err != nil {
		fatalf("%v", err)
	}

	if res.Success {
		fmt.Printf("consensus generated, network-time latency %.1fs\n", res.Latency.Seconds())
	} else {
		fmt.Println("no valid consensus document this period")
	}

	if rec != nil {
		evs := rec.Events()
		if d := rec.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "tracerun: recorder dropped %d events (raise -events)\n", d)
		}
		if *metricsPath != "" {
			if err := writeTo(*metricsPath, func(f *os.File) error { return rec.WriteJSONL(f) }); err != nil {
				fatalf("writing %s: %v", *metricsPath, err)
			}
			fmt.Printf("metrics: %d events -> %s\n", len(evs), *metricsPath)
		}
		if *tracePath != "" {
			if err := writeTo(*tracePath, func(f *os.File) error { return partialtor.WriteChromeTrace(f, evs) }); err != nil {
				fatalf("writing %s: %v", *tracePath, err)
			}
			fmt.Printf("trace: %d events -> %s (open in chrome://tracing or ui.perfetto.dev)\n",
				len(evs), *tracePath)
		}
	}

	if det != nil {
		// The consensus this period is lost when the protocol's schedule
		// ends without a document: the v3 monitor's final check at 4 rounds.
		// Other protocols get the paper's fallback accounting.
		lost := partialtor.FallbackLatency
		if proto == partialtor.Current {
			lost = 4 * *round
		}
		reportDetections(res, lost, *noAttack)
	}
	if !res.Success && det == nil {
		os.Exit(1)
	}
}

// writeTo writes via fn to path, reporting the first error of fn and Close.
func writeTo(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// reportDetections prints the detector's verdicts and exits nonzero when
// the flood went undetected (or, on a failed run, was only detected after
// the consensus was already lost).
func reportDetections(res *partialtor.RunResult, lost time.Duration, noAttack bool) {
	dets := res.Detections
	if len(dets) == 0 {
		if noAttack {
			fmt.Println("detector: quiet (no attack, no false positives)")
			return
		}
		fmt.Println("detector: the flood went UNDETECTED")
		os.Exit(1)
	}
	first, _ := partialtor.FirstDetection(dets)
	fmt.Printf("detector: %d signals flagged; first at %.1fs (node %d, %s, %s)\n",
		len(dets), first.At.Seconds(), first.Node, first.Layer, first.Signal)
	if noAttack {
		fmt.Println("detector: FALSE POSITIVE on a healthy run")
		os.Exit(1)
	}
	if first.Latency >= 0 {
		fmt.Printf("detector: detection latency %.1fs after the flood began\n", first.Latency.Seconds())
	}
	if !res.Success {
		if first.At < lost {
			fmt.Printf("detector: flagged %.1fs before the consensus was lost at %.1fs\n",
				(lost - first.At).Seconds(), lost.Seconds())
		} else {
			fmt.Printf("detector: flagged only at %.1fs, AFTER the consensus was lost at %.1fs\n",
				first.At.Seconds(), lost.Seconds())
			os.Exit(1)
		}
	}
}
