// Command attackcost evaluates the paper's §4.3 DDoS pricing model: how
// much it costs to rent enough stressor traffic to break every hourly Tor
// consensus run. With the defaults it reproduces the headline numbers,
// $0.074 per instance and $53.28 per month.
package main

import (
	"flag"
	"fmt"
	"time"

	"partialtor"
	"partialtor/internal/attack"
)

func main() {
	var (
		targets  = flag.Int("targets", 5, "authorities to flood (majority of 9)")
		minutes  = flag.Float64("minutes", 5, "attack window per consensus instance")
		price    = flag.Float64("price", 0.00074, "stressor price per Mbit/s per hour ($)")
		link     = flag.Float64("link", 250, "authority link capacity (Mbit/s)")
		required = flag.Float64("required", 10, "protocol bandwidth requirement (Mbit/s)")
	)
	flag.Parse()

	m := attack.CostModel{
		PricePerMbitHour:  *price,
		AuthorityLinkMbit: *link,
		RequiredMbit:      *required,
	}
	d := time.Duration(*minutes * float64(time.Minute))
	fmt.Println(m.Summary(*targets, d))
	fmt.Printf("\nwith the paper's defaults: %s\n", partialtor.DefaultCostModel().Summary(5, 5*time.Minute))
}
