// Command attackcost evaluates the paper's §4.3 DDoS pricing model: how
// much it costs to rent enough stressor traffic to break every hourly Tor
// consensus run. With the defaults it reproduces the headline numbers,
// $0.074 per instance and $53.28 per month — and, with the tier-aware
// extension, prices the "flood the mirrors" family: what the same stressor
// market charges to knock out a cache tier of hundreds or thousands of
// nodes for a whole fetch window (the over-provisioning defense economics).
//
// Both pricing tables are targets × duration sweeps on the shared grid
// engine, so adding axis values just grows the grid.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"partialtor"
	"partialtor/internal/attack"
)

// priced is one cell of a pricing sweep.
type priced struct {
	targets  int
	window   time.Duration
	instance float64
	month    float64
}

// costGrid prices every (targets, duration) cell of one tier's flood on
// the sweep engine. residual is the bandwidth the attacker leaves each
// target: the paper's authority attack floods to just below the protocol
// requirement (250 − 10 = 240 Mbit/s of stressor traffic), a cache
// knockout floods the whole link.
func costGrid(ctx context.Context, m attack.CostModel, tier attack.Tier, residual float64, targets []int, windows []time.Duration) []priced {
	grid := partialtor.MustNewSweepGrid(
		partialtor.SweepInts("targets", targets...),
		partialtor.SweepDurations("window", windows...),
	)
	results := partialtor.RunSweepCtx(ctx, grid, 0, func(_ context.Context, c partialtor.SweepCell) (priced, error) {
		n, d := c.Int("targets"), c.Duration("window")
		plan := attack.Plan{
			Tier:     tier,
			Targets:  attack.FirstTargets(n),
			Start:    0,
			End:      d,
			Residual: residual,
		}
		inst := m.PlanCost(plan)
		return priced{targets: n, window: d, instance: inst, month: m.PerMonth(inst)}, nil
	})
	out := make([]priced, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "attackcost: cell %s: %v\n", r.Cell, r.Err)
			os.Exit(1)
		}
		out = append(out, r.Value)
	}
	return out
}

func printGrid(title string, rows []priced) {
	fmt.Println(title)
	fmt.Printf("%-9s %-10s %-14s %-14s\n", "targets", "window", "per-instance", "per-month")
	for _, r := range rows {
		fmt.Printf("%-9d %-10v $%-13.3f $%-13.2f\n", r.targets, r.window, r.instance, r.month)
	}
	fmt.Println()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "attackcost: "+format+"\n", args...)
	os.Exit(1)
}

// positiveInts parses a comma-separated count list and rejects values < 1.
func positiveInts(flagName, s string) []int {
	out, err := partialtor.ParseSweepCounts(s)
	if err != nil {
		fatalf("invalid -%s: %v", flagName, err)
	}
	return out
}

func main() {
	var (
		targets   = flag.String("targets", "5", "authority target counts to sweep (majority of 9 is 5)")
		minutes   = flag.String("minutes", "5", "attack windows per consensus instance, minutes (fractions allowed)")
		price     = flag.Float64("price", 0.00074, "stressor price per Mbit/s per hour ($)")
		link      = flag.Float64("link", 250, "authority link capacity (Mbit/s)")
		required  = flag.Float64("required", 10, "protocol bandwidth requirement (Mbit/s)")
		caches    = flag.String("caches", "20,100,1000,5000", "cache-tier target counts to sweep")
		cacheWin  = flag.Duration("cachewindow", time.Hour, "cache flood window (the client fetch window)")
		cacheLink = flag.Float64("cachelink", partialtor.DefaultCostModel().CacheLinkMbit,
			"cache link capacity (Mbit/s)")
	)
	flag.Parse()

	targetCounts := positiveInts("targets", *targets)
	cacheCounts := positiveInts("caches", *caches)
	if *cacheWin <= 0 {
		fatalf("invalid -cachewindow: %v must be positive", *cacheWin)
	}
	mins, err := partialtor.ParseSweepFloats(*minutes)
	if err != nil {
		fatalf("invalid -minutes: %v", err)
	}
	var windows []time.Duration
	for _, m := range mins {
		if m <= 0 {
			fatalf("invalid -minutes: window %g must be positive", m)
		}
		windows = append(windows, time.Duration(m*float64(time.Minute)))
	}

	m := attack.CostModel{
		PricePerMbitHour:  *price,
		AuthorityLinkMbit: *link,
		RequiredMbit:      *required,
		CacheLinkMbit:     *cacheLink,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// The authority grid prices the paper's attack: flood each authority
	// down to just below its protocol requirement, so with the defaults the
	// 5-target 5-minute cell is the headline $0.074 / $53.28.
	printGrid(
		fmt.Sprintf("Authority-tier flood to below the %.0f Mbit/s requirement (%.0f Mbit/s links, $%.5f per Mbit/s/h):",
			m.RequiredMbit, m.AuthorityLinkMbit, m.PricePerMbitHour),
		costGrid(ctx, m, attack.TierAuthority, m.RequiredMbit*1e6, targetCounts, windows))
	printGrid(
		fmt.Sprintf("Cache-tier knockout for one %v fetch window (%.0f Mbit/s links fully flooded):", *cacheWin, m.CacheLinkMbit),
		costGrid(ctx, m, attack.TierCache, 0, cacheCounts, []time.Duration{*cacheWin}))

	fmt.Printf("headline accounting: %s\n", m.Summary(5, 5*time.Minute))
	fmt.Printf("with the paper's defaults: %s\n", partialtor.DefaultCostModel().Summary(5, 5*time.Minute))
}
