// Command cachesweep maps out the distribution tier's resilience surface:
// it sweeps cache count × client population × attack residual and reports,
// for each cell, the time to target coverage, the final coverage and the
// per-tier egress. The residual axis prices the "flood the mirrors" family:
// -1 means no attack, 0 knocks the flooded caches offline, positive values
// model a stressor that leaves that much bandwidth (bits/s).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"partialtor"
)

func parseList(s string, parse func(string) (float64, error)) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := parse(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cachesweep: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		cachesFlag    = flag.String("caches", "10,20,40", "cache counts to sweep")
		clientsFlag   = flag.String("clients", "100000,1000000", "client populations to sweep")
		residualsFlag = flag.String("residuals", "-1,500000,0", "attack residual bits/s (-1 = no attack)")
		window        = flag.Duration("window", 30*time.Minute, "client fetch window")
		target        = flag.Float64("target", 0.95, "coverage fraction defining success")
		seed          = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()

	atoi := func(s string) (float64, error) { v, err := strconv.Atoi(s); return float64(v), err }
	caches, err := parseList(*cachesFlag, atoi)
	if err != nil {
		fatalf("invalid -caches: %v", err)
	}
	clients, err := parseList(*clientsFlag, atoi)
	if err != nil {
		fatalf("invalid -clients: %v", err)
	}
	residuals, err := parseList(*residualsFlag, func(s string) (float64, error) {
		return strconv.ParseFloat(s, 64)
	})
	if err != nil {
		fatalf("invalid -residuals: %v", err)
	}
	for _, nc := range caches {
		if nc < 1 {
			fatalf("-caches values must be >= 1 (got %d)", int(nc))
		}
	}
	for _, pop := range clients {
		if pop < 1 {
			fatalf("-clients values must be >= 1 (got %d)", int(pop))
		}
	}

	start := time.Now()
	fmt.Printf("%-8s %-10s %-12s %-12s %-10s %-12s %-10s\n",
		"caches", "clients", "residual", "t95", "coverage", "cache-egress", "failed")
	for _, nc := range caches {
		for _, pop := range clients {
			for _, res := range residuals {
				spec := partialtor.DistributionSpec{
					Caches:         int(nc),
					Clients:        int(pop),
					FetchWindow:    *window,
					TargetCoverage: *target,
					Seed:           *seed,
				}
				label := "none"
				if res >= 0 {
					plan := partialtor.AttackPlan{
						Tier:     partialtor.TierCache,
						Targets:  partialtor.MajorityTargets(int(nc)),
						Start:    0,
						End:      *window + 30*time.Minute,
						Residual: res,
					}
					spec.Attacks = []partialtor.AttackPlan{plan}
					label = fmt.Sprintf("%.1fMbit", res/1e6)
				}
				r, err := partialtor.RunDistribution(spec)
				if err != nil {
					fatalf("run (caches=%d clients=%d): %v", int(nc), int(pop), err)
				}
				t95 := "never"
				if r.TimeToTarget != partialtor.Never {
					t95 = r.TimeToTarget.Round(time.Second).String()
				}
				fmt.Printf("%-8d %-10d %-12s %-12s %-10s %-12s %-10d\n",
					int(nc), int(pop), label, t95,
					fmt.Sprintf("%.1f%%", 100*r.Coverage()),
					fmt.Sprintf("%.1fGB", float64(r.CacheEgress)/1e9),
					r.FailedFetches)
			}
		}
	}
	fmt.Printf("\n%d runs in %v\n",
		len(caches)*len(clients)*len(residuals), time.Since(start).Round(time.Millisecond))
}
