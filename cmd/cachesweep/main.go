// Command cachesweep maps out the distribution tier's resilience surface:
// it sweeps cache count × client population × attack residual ×
// compromised-mirror fraction on the grid engine and reports, for each
// cell, the time to target coverage, the final coverage of the genuine
// consensus, what a chain-blind observer would report (naive), the fork
// detections, and the attack's price.
//
// The residual axis spans the "flood the mirrors" family: -1 means no
// attack, 0 knocks the flooded caches offline, positive values model a
// stressor that leaves that much bandwidth (bits/s). The compromised axis
// spans the "own the mirrors" family: the fraction of caches serving stale
// or forked documents (-mode); with -verify (default) clients run the
// proposal-239 chain-verification path, detect the misbehavior and fall
// back to honest caches — the table shows the coverage cliff as the
// compromised fraction crosses one half.
//
// With -topology continents the tiers are placed on the builtin continental
// map (regional latencies, bandwidth tiers, region-share client
// populations) and each row is followed by its per-region coverage and
// p50/p99 time-to-coverage. -flood-region then scopes the flood to one
// region's caches ("flood the EU mirrors") instead of the majority prefix.
// The -race axis sweeps the racing-client width K: 0 is the legacy
// single-cache client, 1 a failover client, K>=2 races each fetch against K
// caches (first response wins, laggards priced as waste).
//
// Cells fan out over -workers goroutines (default: all cores); the table is
// printed in grid order after the sweep, so any worker count produces
// byte-identical output. Live progress goes to stderr as cells finish. A
// failing cell costs one row, not the sweep: its error is reported with the
// full cell coordinates at the end. Ctrl-C cancels the sweep between cells;
// completed cells still print.
//
// With -gossip the cache tier is meshed into the dissemination layer and
// -fanout becomes a sweep axis: each cell's caches push fresh-consensus
// digests to that many mesh peers, pull on digest miss, and reconcile by
// anti-entropy. -gossip-seeds pre-seeds the first N caches with the current
// consensus, and -authority-residual (>= 0) floods every authority down to
// that bandwidth for the whole run — together they reproduce the
// gossip-outage experiment: authorities unreachable, the mesh the only
// distribution path. Gossip rows gain mesh columns (pushes, pulls,
// anti-entropy rounds, mesh traffic).
//
// The chaos axes inject deterministic faults into every cell: -faults
// sweeps the fraction of mirrors crashed mid-window (state lost, restart
// and catch up), -churn the fraction of the mesh membership that leaves
// and rejoins (needs -gossip), and -backoff switches the fleets from the
// fixed retry delay to capped seeded-jitter exponential backoff. Chaos
// rows gain graceful-degradation columns: fault events, worst MTTR, time
// below target coverage and shed retries.
//
// -flood-seeds prices the mesh-partition economics: the cache-tier flood
// (the residual axis) targets the gossip-seeded mirrors instead of the
// majority prefix — the adversary's cheapest way to starve the mesh — and
// each gossip row adds the MeshPartitionCost of cutting one mirror out of
// a mesh of that fanout. Swept alongside -fanout this shows the coverage
// cliff against seed redundancy.
//
// With -trace the first grid cell (rank 0) runs with the observability
// layer on and its event stream — cache fetches, fallbacks, serves, fleet
// coverage, kernel transfers — is written as a Chrome trace.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"time"

	"partialtor"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cachesweep: "+format+"\n", args...)
	os.Exit(1)
}

// fmtDuration renders a time-to-coverage cell; Never means the fraction was
// not reached within the fetch window.
func fmtDuration(d time.Duration) string {
	if d == partialtor.Never {
		return "never"
	}
	return d.Round(time.Second).String()
}

// cellRow is one sweep cell's rendered outcome.
type cellRow struct {
	result *partialtor.DistributionResult
	cost   float64 // stressor price of the cell's flood; <0 = no flood
	rent   float64 // monthly rent of the compromised caches; <0 = none
	cut    float64 // price of cutting one mirror out of the mesh; <0 = n/a
}

// fracCount converts an axis fraction into a target count, at least one.
func fracCount(frac float64, n int) int {
	c := int(math.Round(frac * float64(n)))
	if c < 1 {
		c = 1
	}
	return c
}

func main() {
	var (
		cachesFlag    = flag.String("caches", "10,20,40", "cache counts to sweep")
		clientsFlag   = flag.String("clients", "100000,1000000", "client populations to sweep")
		residualsFlag = flag.String("residuals", "-1,500000,0", "attack residual bits/s (-1 = no attack)")
		compFlag      = flag.String("compromised", "0,0.25,0.6", "compromised-cache fractions to sweep")
		modeFlag      = flag.String("mode", "equivocate", "compromise mode: stale or equivocate")
		topoFlag      = flag.String("topology", "flat", "topology: flat or continents")
		raceFlag      = flag.String("race", "0", "racing-client widths K to sweep (0 = legacy client)")
		floodFlag     = flag.String("flood-region", "", "flood only this region's caches (requires -topology)")
		gossipOn      = flag.Bool("gossip", false, "mesh the cache tier into the gossip dissemination layer")
		fanoutFlag    = flag.String("fanout", "1,3", "gossip push fanouts to sweep (needs -gossip)")
		gossipSeeds   = flag.Int("gossip-seeds", 1, "caches pre-seeded with the current consensus (needs -gossip)")
		authResidual  = flag.Float64("authority-residual", -1, "flood every authority to this residual bits/s for the whole run (-1 = off)")
		faultsFlag    = flag.String("faults", "0", "crashed-mirror fractions to sweep (0 = no crash fault)")
		churnFlag     = flag.String("churn", "0", "churned-mesh fractions to sweep (0 = none; needs -gossip)")
		backoffOn     = flag.Bool("backoff", false, "fleets retry with capped seeded-jitter exponential backoff")
		floodSeeds    = flag.Bool("flood-seeds", false, "cache-tier flood targets the gossip-seeded mirrors (needs -gossip)")
		verify        = flag.Bool("verify", true, "clients run proposal-239 chain verification")
		window        = flag.Duration("window", 30*time.Minute, "client fetch window")
		target        = flag.Float64("target", 0.95, "coverage fraction defining success")
		seed          = flag.Int64("seed", 42, "simulation seed")
		workers       = flag.Int("workers", 0, "sweep worker pool (0 = all cores, 1 = serial)")
		tracePath     = flag.String("trace", "", "write a Chrome trace of the first grid cell (chrome://tracing, Perfetto)")
	)
	flag.Parse()

	cacheCounts, err := partialtor.ParseSweepCounts(*cachesFlag)
	if err != nil {
		fatalf("invalid -caches: %v", err)
	}
	populations, err := partialtor.ParseSweepCounts(*clientsFlag)
	if err != nil {
		fatalf("invalid -clients: %v", err)
	}
	residuals, err := partialtor.ParseSweepFloats(*residualsFlag)
	if err != nil {
		fatalf("invalid -residuals: %v", err)
	}
	fractions, err := partialtor.ParseSweepFloats(*compFlag)
	if err != nil {
		fatalf("invalid -compromised: %v", err)
	}
	for _, f := range fractions {
		if f < 0 || f > 1 {
			fatalf("invalid -compromised: fraction %g outside [0, 1]", f)
		}
	}
	var mode partialtor.CompromiseMode
	switch *modeFlag {
	case "stale":
		mode = partialtor.CompromiseStale
	case "equivocate":
		mode = partialtor.CompromiseEquivocate
	default:
		fatalf("invalid -mode %q: want stale or equivocate", *modeFlag)
	}
	topology, err := partialtor.TopologyByName(*topoFlag)
	if err != nil {
		fatalf("invalid -topology: %v", err)
	}
	races, err := partialtor.ParseSweepInts(*raceFlag)
	if err != nil {
		fatalf("invalid -race: %v", err)
	}
	for _, k := range races {
		if k < 0 {
			fatalf("invalid -race: width %d is negative", k)
		}
	}
	if *floodFlag != "" && topology == nil {
		fatalf("-flood-region %q needs -topology", *floodFlag)
	}
	// Without -gossip the fanout axis collapses to a single placeholder
	// cell, so the grid shape — and the table — match the pre-mesh tool.
	fanouts := []int{0}
	if *gossipOn {
		fanouts, err = partialtor.ParseSweepCounts(*fanoutFlag)
		if err != nil {
			fatalf("invalid -fanout: %v", err)
		}
		if *gossipSeeds < 1 {
			fatalf("invalid -gossip-seeds: need at least one seeded cache, got %d", *gossipSeeds)
		}
	}

	// Like the fanout axis, the chaos axes default to a single placeholder
	// value so a chaos-free invocation keeps the pre-chaos grid shape.
	crashFracs, err := partialtor.ParseSweepFloats(*faultsFlag)
	if err != nil {
		fatalf("invalid -faults: %v", err)
	}
	churnFracs, err := partialtor.ParseSweepFloats(*churnFlag)
	if err != nil {
		fatalf("invalid -churn: %v", err)
	}
	chaosOn := *backoffOn
	for _, f := range crashFracs {
		if f < 0 || f > 1 {
			fatalf("invalid -faults: fraction %g outside [0, 1]", f)
		}
		chaosOn = chaosOn || f > 0
	}
	for _, f := range churnFracs {
		if f < 0 || f > 1 {
			fatalf("invalid -churn: fraction %g outside [0, 1]", f)
		}
		if f > 0 && !*gossipOn {
			fatalf("-churn %g needs -gossip: churn is mirrors leaving the mesh", f)
		}
		chaosOn = chaosOn || f > 0
	}
	if *floodSeeds && !*gossipOn {
		fatalf("-flood-seeds needs -gossip: it targets the seeded mirrors")
	}

	grid := partialtor.MustNewSweepGrid(
		partialtor.SweepInts("caches", cacheCounts...),
		partialtor.SweepInts("clients", populations...),
		partialtor.SweepFloats("residual", residuals...),
		partialtor.SweepFloats("comp", fractions...),
		partialtor.SweepInts("race", races...),
		partialtor.SweepInts("fanout", fanouts...),
		partialtor.SweepFloats("fault", crashFracs...),
		partialtor.SweepFloats("churn", churnFracs...),
	)
	pricing := partialtor.DefaultCostModel()
	// Trace only the first cell: one recorder cannot be shared across the
	// worker pool, and one representative cell is what a trace is for.
	var rec *partialtor.TraceRecorder
	if *tracePath != "" {
		rec = partialtor.NewTraceRecorder(1 << 20)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	sp := partialtor.SweepParams{
		Workers: *workers,
		OnCell: func(done, total int, cellErr error) {
			mark := ""
			if cellErr != nil {
				mark = " (error)"
			}
			fmt.Fprintf(os.Stderr, "cachesweep: %d/%d cells%s", done, total, mark)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	}
	results := partialtor.RunSweepParams(ctx, grid, sp, func(_ context.Context, c partialtor.SweepCell) (cellRow, error) {
		spec := partialtor.DistributionSpec{
			Caches:         c.Int("caches"),
			Clients:        c.Int("clients"),
			FetchWindow:    *window,
			TargetCoverage: *target,
			Seed:           *seed,
			VerifyClients:  *verify,
			Topology:       topology,
			RaceK:          c.Int("race"),
		}
		if rec != nil && c.Rank == 0 {
			spec.Tracer = rec
		}
		if *gossipOn {
			spec.Gossip = &partialtor.GossipConfig{
				Fanout: c.Int("fanout"),
				Seeds:  partialtor.FirstTargets(*gossipSeeds),
			}
		}
		if *backoffOn {
			// The zero value selects the backoff defaults at validation.
			spec.Backoff = &partialtor.RetryBackoff{}
		}
		// The fault windows sit relative to the fetch window: the crash hits
		// once the tier is warm and clears mid-run, the churn overlaps it and
		// stretches to the window's midpoint — so every cell also measures
		// the recovery, not just the outage.
		var plan partialtor.FaultPlan
		if frac := c.Float("fault"); frac > 0 {
			n := fracCount(frac, spec.Caches)
			plan.Faults = append(plan.Faults, partialtor.FaultSpec{
				Kind:    partialtor.FaultCrash,
				Tier:    partialtor.TierCache,
				Targets: partialtor.SpreadTargets(1, spec.Caches, n),
				Start:   *window / 6,
				End:     *window/6 + *window/4,
			})
		}
		if frac := c.Float("churn"); frac > 0 {
			n := fracCount(frac, spec.Caches)
			plan.Faults = append(plan.Faults, partialtor.FaultSpec{
				Kind:    partialtor.FaultChurn,
				Tier:    partialtor.TierCache,
				Targets: partialtor.SpreadTargets(2, spec.Caches, n),
				Start:   *window / 4,
				End:     *window / 2,
			})
		}
		if len(plan.Faults) > 0 {
			spec.Faults = &plan
		}
		row := cellRow{cost: -1, rent: -1, cut: -1}
		if *authResidual >= 0 {
			plan := partialtor.AttackPlan{
				Tier:     partialtor.TierAuthority,
				Targets:  partialtor.FirstTargets(9),
				Start:    0,
				End:      *window + 30*time.Minute,
				Residual: *authResidual,
			}
			spec.Attacks = append(spec.Attacks, plan)
			row.cost = pricing.PlanCost(plan)
		}
		if res := c.Float("residual"); res >= 0 {
			plan := partialtor.AttackPlan{
				Tier:     partialtor.TierCache,
				Start:    0,
				End:      *window + 30*time.Minute,
				Residual: res,
			}
			switch {
			case *floodFlag != "":
				// Resolve "flood region X" against the placement here, so
				// the plan is priced by the caches it actually hits.
				plan.TargetRegion = *floodFlag
				if err := plan.ResolveRegion(topology, spec.Caches); err != nil {
					return cellRow{}, err
				}
			case *floodSeeds:
				// The mesh-partition attack: starve the dissemination layer
				// at its roots instead of flooding a majority of the tier.
				plan.Targets = partialtor.FirstTargets(*gossipSeeds)
			default:
				plan.Targets = partialtor.MajorityTargets(spec.Caches)
			}
			spec.Attacks = append(spec.Attacks, plan)
			if row.cost < 0 {
				row.cost = 0
			}
			row.cost += pricing.PlanCost(plan)
			if *floodSeeds {
				row.cut = pricing.MeshPartitionCost(spec.Gossip.Fanout, plan.End-plan.Start, res)
			}
		}
		if frac := c.Float("comp"); frac > 0 {
			n := int(math.Round(frac * float64(spec.Caches)))
			if n < 1 {
				n = 1
			}
			// Compromise the TOP of the cache index range: floods target the
			// majority prefix (MajorityTargets), so the two axes stay
			// independent — a flooded-offline cache cannot also be the one
			// whose misbehavior the comp axis is measuring — until the
			// fractions are large enough that overlap is unavoidable.
			targets := make([]int, n)
			for i := range targets {
				targets[i] = spec.Caches - n + i
			}
			comp := partialtor.CompromisePlan{
				Targets: targets,
				Mode:    mode,
			}
			spec.Compromise = &comp
			row.rent = pricing.CompromiseCostPerMonth(comp)
		}
		r, err := partialtor.RunDistribution(spec)
		if err != nil {
			return cellRow{}, err
		}
		row.result = r
		return row, nil
	})

	gossipHeader := ""
	if *gossipOn {
		gossipHeader = fmt.Sprintf(" %-7s %-8s %-7s %-8s %-10s",
			"fanout", "pushes", "pulls", "ae", "mesh")
		if *floodSeeds {
			gossipHeader += fmt.Sprintf(" %-10s", "cutcost")
		}
	}
	chaosHeader := ""
	if chaosOn {
		chaosHeader = fmt.Sprintf(" %-6s %-6s %-7s %-10s %-10s %-8s",
			"fault", "churn", "events", "mttr", "below", "dropped")
	}
	fmt.Printf("%-8s %-10s %-12s %-6s %-5s %-12s %-12s %-10s %-10s %-7s %-10s %-10s%s%s\n",
		"caches", "clients", "residual", "comp", "race", "t95", "p99", "coverage", "naive", "forks", "cost", "rent/mo", gossipHeader, chaosHeader)
	failed := 0
	for _, r := range results {
		nc, pop := r.Cell.Int("caches"), r.Cell.Int("clients")
		res := r.Cell.Float("residual")
		label := "none"
		if res >= 0 {
			label = fmt.Sprintf("%.1fMbit", res/1e6)
		}
		comp := fmt.Sprintf("%.0f%%", 100*r.Cell.Float("comp"))
		race := r.Cell.Int("race")
		if r.Err != nil {
			failed++
			tail := ""
			if *gossipOn {
				tail = fmt.Sprintf(" %-7d %-8s %-7s %-8s %-10s", r.Cell.Int("fanout"), "-", "-", "-", "-")
				if *floodSeeds {
					tail += fmt.Sprintf(" %-10s", "-")
				}
			}
			if chaosOn {
				tail += fmt.Sprintf(" %-6s %-6s %-7s %-10s %-10s %-8s",
					fmt.Sprintf("%.0f%%", 100*r.Cell.Float("fault")),
					fmt.Sprintf("%.0f%%", 100*r.Cell.Float("churn")),
					"-", "-", "-", "-")
			}
			fmt.Printf("%-8d %-10d %-12s %-6s %-5d %-12s %-12s %-10s %-10s %-7s %-10s %-10s%s\n",
				nc, pop, label, comp, race, "ERROR", "-", "-", "-", "-", "-", "-", tail)
			continue
		}
		cost, rent := "-", "-"
		if r.Value.cost >= 0 {
			cost = fmt.Sprintf("$%.2f", r.Value.cost)
		}
		if r.Value.rent >= 0 {
			rent = fmt.Sprintf("$%.0f", r.Value.rent)
		}
		tail := ""
		if *gossipOn {
			d := r.Value.result
			tail = fmt.Sprintf(" %-7d %-8d %-7d %-8d %-10s",
				r.Cell.Int("fanout"), d.GossipPushes, d.GossipPulls, d.GossipRounds,
				fmt.Sprintf("%.1fMB", float64(d.GossipBytes)/1e6))
			if *floodSeeds {
				cut := "-"
				if r.Value.cut >= 0 {
					cut = fmt.Sprintf("$%.2f", r.Value.cut)
				}
				tail += fmt.Sprintf(" %-10s", cut)
			}
		}
		if chaosOn {
			d := r.Value.result
			tail += fmt.Sprintf(" %-6s %-6s %-7d %-10s %-10s %-8d",
				fmt.Sprintf("%.0f%%", 100*r.Cell.Float("fault")),
				fmt.Sprintf("%.0f%%", 100*r.Cell.Float("churn")),
				d.FaultEvents,
				fmtDuration(partialtor.WorstMTTR(d.Recoveries)),
				d.TimeBelowTarget.Round(time.Second).String(),
				d.RetryDropped)
		}
		fmt.Printf("%-8d %-10d %-12s %-6s %-5d %-12s %-12s %-10s %-10s %-7d %-10s %-10s%s\n",
			nc, pop, label, comp, race,
			fmtDuration(r.Value.result.TimeToTarget),
			fmtDuration(r.Value.result.TimeToCoverage(0.99)),
			fmt.Sprintf("%.1f%%", 100*r.Value.result.Coverage()),
			fmt.Sprintf("%.1f%%", 100*r.Value.result.NaiveCoverage()),
			len(r.Value.result.ForkDetections), cost, rent, tail)
		for _, rc := range r.Value.result.Regions {
			fmt.Printf("  region %-4s clients %-9d coverage %-7s p50 %-12s p99 %-12s\n",
				rc.Name, rc.Clients,
				fmt.Sprintf("%.1f%%", 100*rc.Coverage()),
				fmtDuration(rc.P50), fmtDuration(rc.P99))
		}
	}
	if rec != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		werr := partialtor.WriteChromeTrace(f, rec.Events())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatalf("writing %s: %v", *tracePath, werr)
		}
		fmt.Fprintf(os.Stderr, "cachesweep: cell 0 trace: %d events -> %s\n", rec.Len(), *tracePath)
	}
	// Timing goes to stderr: stdout is the table, byte-identical across
	// worker counts and wall clocks.
	fmt.Fprintf(os.Stderr, "\n%d cells in %v\n", grid.Size(), time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		for _, r := range results {
			if r.Err != nil {
				// The cell coordinates carry every axis, residual included.
				fmt.Fprintf(os.Stderr, "cachesweep: cell %s: %v\n", r.Cell, r.Err)
			}
		}
		os.Exit(1)
	}
}
