// Benchmarks regenerating each of the paper's evaluation artifacts at a
// reduced scale, with custom metrics exposing the quantities the paper
// plots (latency seconds, required Mbit/s, bytes). Run with:
//
//	go test -bench=. -benchmem
//
// Full-scale artifacts are produced by cmd/benchtables (no -quick flag).
package partialtor_test

import (
	"context"
	"testing"
	"time"

	"partialtor"
)

// bench is the context the benchmarks run under.
var bench = context.Background()

// BenchmarkFigure1AttackLog regenerates the Figure 1 attack run (current
// protocol, majority throttled during the vote rounds).
func BenchmarkFigure1AttackLog(b *testing.B) {
	var lines int
	for i := 0; i < b.N; i++ {
		r, err := partialtor.Figure1(bench, partialtor.Figure1Params{
			Relays:   400,
			Round:    15 * time.Second,
			Residual: 5e3,
			Seed:     int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if r.Run.Success {
			b.Fatal("attack run unexpectedly succeeded")
		}
		lines = len(r.Lines)
	}
	b.ReportMetric(float64(lines), "log_lines")
}

// BenchmarkFigure6RelaySeries regenerates the relay-count series.
func BenchmarkFigure6RelaySeries(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		avg = partialtor.Figure6().Average
	}
	b.ReportMetric(avg, "avg_relays")
}

// BenchmarkFigure7BandwidthRequirement regenerates one bandwidth-requirement
// point (800 relays, 5 authorities attacked).
func BenchmarkFigure7BandwidthRequirement(b *testing.B) {
	var req float64
	for i := 0; i < b.N; i++ {
		r, err := partialtor.Figure7(bench, partialtor.Figure7Params{
			RelayCounts: []int{800},
			Round:       15 * time.Second,
			MaxMbit:     60,
			Precision:   1,
			Seed:        int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		req = r.Rows[0].RequiredMbit
	}
	b.ReportMetric(req, "required_mbit")
}

// BenchmarkFigure10Latency regenerates one cell per protocol of the latency
// grid (10 Mbit/s, 600 relays) and reports the ICPS latency.
func BenchmarkFigure10Latency(b *testing.B) {
	var ours time.Duration
	for i := 0; i < b.N; i++ {
		r, err := partialtor.Figure10(bench, partialtor.Figure10Params{
			BandwidthsMbit: []float64{10},
			RelayCounts:    []int{600},
			Round:          15 * time.Second,
			Seed:           int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		c, ok := r.Cell(partialtor.ICPS, 10, 600)
		if !ok || !c.Success {
			b.Fatal("ICPS cell failed")
		}
		ours = c.Latency
	}
	b.ReportMetric(ours.Seconds(), "ours_latency_s")
}

// BenchmarkFigure11Recovery regenerates the outage-recovery experiment
// (scaled to a one-minute outage) and reports the recovery time.
func BenchmarkFigure11Recovery(b *testing.B) {
	var rec time.Duration
	for i := 0; i < b.N; i++ {
		r, err := partialtor.Figure11(bench, partialtor.Figure11Params{
			RelayCounts: []int{400},
			Outage:      time.Minute,
			Seed:        int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if r.Rows[0].Recovery == partialtor.Never {
			b.Fatal("no recovery")
		}
		rec = r.Rows[0].Recovery
	}
	b.ReportMetric(rec.Seconds(), "recovery_s")
	b.ReportMetric(partialtor.FallbackLatency.Seconds(), "baseline_s")
}

// BenchmarkTable1Communication regenerates the design-comparison
// measurements and reports the byte ratio between the synchronous protocol
// and ours.
func BenchmarkTable1Communication(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := partialtor.Table1(bench, partialtor.Table1Params{
			Relays:    300,
			Bandwidth: 100e6,
			Round:     20 * time.Second,
			Seed:      int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		var syncBytes, oursBytes int64
		for _, row := range r.Rows {
			switch row.Protocol {
			case partialtor.Synchronous:
				syncBytes = row.MeasuredBytes
			case partialtor.ICPS:
				oursBytes = row.MeasuredBytes
			}
		}
		if oursBytes == 0 {
			b.Fatal("missing measurement")
		}
		ratio = float64(syncBytes) / float64(oursBytes)
	}
	b.ReportMetric(ratio, "sync_over_ours_bytes")
}

// BenchmarkTable2Rounds verifies the 2+5+2 round structure.
func BenchmarkTable2Rounds(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		r, err := partialtor.Table2(bench)
		if err != nil {
			b.Fatal(err)
		}
		total = r.Total
	}
	if total != 9 {
		b.Fatalf("total rounds %d, want 9", total)
	}
	b.ReportMetric(float64(total), "rounds")
}

// BenchmarkCostModel evaluates the §4.3 pricing.
func BenchmarkCostModel(b *testing.B) {
	var month float64
	for i := 0; i < b.N; i++ {
		month = partialtor.CostTable().CostPerMonth
	}
	b.ReportMetric(month, "usd_per_month")
}
