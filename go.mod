module partialtor

go 1.24
