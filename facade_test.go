package partialtor_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"partialtor"
	"partialtor/internal/core"
	"partialtor/internal/dirv3"
)

// These tests exercise the public facade end to end: a downstream user
// should be able to reproduce the paper's headline claims with nothing but
// the root package.

func TestFacadeHealthyRunsAllProtocols(t *testing.T) {
	for _, proto := range []partialtor.Protocol{
		partialtor.Current, partialtor.Synchronous, partialtor.ICPS,
	} {
		res := partialtor.Run(partialtor.Scenario{
			Protocol:     proto,
			Relays:       150,
			EntryPadding: 0,
			Round:        20 * time.Second,
			Seed:         4,
		})
		if !res.Success {
			t.Fatalf("%v failed on a healthy network", proto)
		}
		if res.Latency <= 0 || res.Latency == partialtor.Never {
			t.Fatalf("%v latency %v", proto, res.Latency)
		}
	}
}

func TestFacadeHeadlineAttack(t *testing.T) {
	// Five minutes of DDoS on the majority: the current protocol loses the
	// period, ours recovers within seconds of the attack ending. (Scaled
	// to one minute / small documents; full scale in cmd/benchtables.)
	plan := partialtor.FiveMinuteOutage(partialtor.MajorityTargets(9))
	plan.End = time.Minute

	cur, err := partialtor.RunE(context.Background(), partialtor.Scenario{
		Protocol:     partialtor.Current,
		Relays:       200,
		EntryPadding: 0,
		Round:        15 * time.Second,
		Attack:       &plan,
		Seed:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cur.Success {
		t.Fatal("current protocol survived the outage")
	}
	if cur.Consensus() != nil {
		t.Fatal("failed run reports a consensus document")
	}
	if _, ok := cur.Detail.(*dirv3.Result); !ok {
		t.Fatalf("detail type %T", cur.Detail)
	}

	ours, err := partialtor.RunE(context.Background(), partialtor.Scenario{
		Protocol:     partialtor.ICPS,
		Relays:       200,
		EntryPadding: 0,
		Attack:       &plan,
		Seed:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ours.Success {
		t.Fatal("ICPS failed to recover from the outage")
	}
	recovery := ours.DoneAt - plan.End
	if recovery < 0 || recovery > 30*time.Second {
		t.Fatalf("recovery %v, want within seconds of the attack end", recovery)
	}
	// The typed accessor replaces reaching through Detail.
	if ours.Consensus() == nil {
		t.Fatal("successful run lost its consensus document")
	}
	if _, ok := ours.Detail.(*core.Result); !ok {
		t.Fatalf("detail type %T", ours.Detail)
	}
}

// TestFacadeRunEErrors pins the error contract at the facade: invalid
// configuration is an error, never a panic.
func TestFacadeRunEErrors(t *testing.T) {
	plan := partialtor.AttackPlan{
		Tier:    partialtor.TierCache,
		Targets: partialtor.MajorityTargets(9),
		End:     time.Minute,
	}
	if _, err := partialtor.RunE(context.Background(), partialtor.Scenario{
		Protocol: partialtor.Current,
		Relays:   150,
		Attack:   &plan,
	}); err == nil || !strings.Contains(err.Error(), "authority-tier") {
		t.Fatalf("cache-tier plan error %v", err)
	}
	if _, err := partialtor.CampaignE(context.Background(), partialtor.CampaignParams{
		Protocol: partialtor.Protocol(404),
		Periods:  1,
		Relays:   100,
	}); err == nil || !strings.Contains(err.Error(), "no driver") {
		t.Fatalf("unknown protocol error %v", err)
	}
}

// TestFacadeExperimentPipeline drives the declarative pipeline end to end
// through the facade.
func TestFacadeExperimentPipeline(t *testing.T) {
	exp, err := partialtor.NewExperiment(
		partialtor.WithScenario(partialtor.Scenario{
			Protocol:     partialtor.Current,
			Relays:       150,
			EntryPadding: -1,
			Round:        15 * time.Second,
			Seed:         3,
		}),
		partialtor.WithPeriods(2),
		partialtor.WithDistribution(partialtor.DistributionSpec{
			Clients:     20_000,
			Caches:      5,
			Fleets:      2,
			FetchWindow: 10 * time.Minute,
			Tick:        5 * time.Second,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	phases := exp.Phases()
	if len(phases) != 3 || phases[0] != partialtor.PhaseGenerate ||
		phases[1] != partialtor.PhaseDistribute || phases[2] != partialtor.PhaseAvail {
		t.Fatalf("phases %v", phases)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Successes != 2 || len(res.Distributions) != 2 {
		t.Fatalf("successes=%d distributions=%d", res.Successes, len(res.Distributions))
	}
	if res.Timeline == nil || res.Availability <= 0 {
		t.Fatalf("availability %v", res.Availability)
	}
}

// TestFacadeSweepCancellation: RunSweepCtx keeps completed cells and marks
// skipped ones with SweepCellSkipped.
func TestFacadeSweepCancellation(t *testing.T) {
	grid := partialtor.MustNewSweepGrid(partialtor.SweepInts("i", 0, 1, 2, 3))
	ctx, cancel := context.WithCancel(context.Background())
	results := partialtor.RunSweepCtx(ctx, grid, 1, func(_ context.Context, c partialtor.SweepCell) (int, error) {
		if c.Int("i") == 1 {
			cancel()
		}
		return c.Int("i") * 2, nil
	})
	if results[0].Err != nil || results[0].Value != 0 || results[1].Err != nil || results[1].Value != 2 {
		t.Fatalf("completed cells lost: %+v", results[:2])
	}
	if !errors.Is(results[3].Err, partialtor.SweepCellSkipped) {
		t.Fatalf("cell 3 error %v, want SweepCellSkipped", results[3].Err)
	}
}

func TestFacadeCostModel(t *testing.T) {
	m := partialtor.DefaultCostModel()
	if math.Abs(m.CostPerMonth(5, 5*time.Minute)-53.28) > 0.01 {
		t.Fatalf("monthly cost %.2f", m.CostPerMonth(5, 5*time.Minute))
	}
	if got := partialtor.CostTable().CostPerInstance; math.Abs(got-0.074) > 0.0005 {
		t.Fatalf("instance cost %.4f", got)
	}
}

func TestFacadeHelpers(t *testing.T) {
	names := partialtor.AuthorityNames()
	if len(names) != 9 || names[0] != "moria1" {
		t.Fatalf("authority names %v", names)
	}
	// The returned slice is a copy; mutating it must not leak.
	names[0] = "mallory"
	if partialtor.AuthorityNames()[0] != "moria1" {
		t.Fatal("AuthorityNames leaks internal state")
	}
	if got := partialtor.MajorityTargets(9); len(got) != 5 {
		t.Fatalf("targets %v", got)
	}
	if partialtor.Seconds(1500*time.Millisecond) != 1.5 {
		t.Fatal("Seconds helper wrong")
	}
	if partialtor.FallbackLatency != 2100*time.Second {
		t.Fatal("fallback latency constant wrong")
	}
	if partialtor.ResidualUnderDDoS != 0.5e6 {
		t.Fatal("residual constant wrong")
	}
}

func TestFacadeFigure6(t *testing.T) {
	f := partialtor.Figure6()
	if math.Abs(f.Average-7141.79) > 0.05 {
		t.Fatalf("average %.2f", f.Average)
	}
}

// TestFacadeDriverRegistry: the pluggable-protocol surface is reachable
// from the facade.
func TestFacadeDriverRegistry(t *testing.T) {
	d, err := partialtor.DriverFor(partialtor.ICPS)
	if err != nil || d.Name() != "Ours" {
		t.Fatalf("ICPS driver %v err %v", d, err)
	}
	ps := partialtor.Protocols()
	if len(ps) < 3 {
		t.Fatalf("protocols %v", ps)
	}
}

// TestFacadeCompromisedCaches drives the compromised-mirror subsystem
// through the public facade: an equivocating compromise is detected by
// verifying clients, who still reach target coverage via honest caches.
func TestFacadeCompromisedCaches(t *testing.T) {
	spec := partialtor.DistributionSpec{
		Clients:     20_000,
		Caches:      8,
		Fleets:      2,
		FetchWindow: 10 * time.Minute,
		Tick:        5 * time.Second,
		Seed:        7,
		Compromise: &partialtor.CompromisePlan{
			Targets: partialtor.FirstTargets(2),
			Mode:    partialtor.CompromiseEquivocate,
		},
		VerifyClients: true,
	}
	res, err := partialtor.RunDistribution(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ForkDetections) == 0 {
		t.Fatal("no fork detected through the facade")
	}
	proof := res.ForkDetections[0].Proof
	if proof == nil || len(proof.Culprits()) == 0 {
		t.Fatal("fork proof missing or culprit-free")
	}
	if res.Coverage() < res.Spec.TargetCoverage {
		t.Fatalf("coverage %.3f below target", res.Coverage())
	}
	if res.Misled != 0 {
		t.Fatalf("%d verifying clients misled", res.Misled)
	}
	// The same tier without verification is silently poisoned.
	spec.VerifyClients = false
	blind, err := partialtor.RunDistribution(spec)
	if err != nil {
		t.Fatal(err)
	}
	if blind.Misled == 0 || blind.NaiveCoverage() <= blind.Coverage() {
		t.Fatalf("chain-blind run not poisoned: misled=%d naive=%.3f genuine=%.3f",
			blind.Misled, blind.NaiveCoverage(), blind.Coverage())
	}
	// Pricing: the compromise is rent, not stressor traffic.
	m := partialtor.DefaultCostModel()
	if got := m.CompromiseCostPerMonth(*spec.Compromise); got != 2*m.CachePerMonth {
		t.Fatalf("compromise rent %.2f", got)
	}
}

// ExampleRunE runs one scenario end to end: the paper's partially
// synchronous protocol (ICPS) over a healthy nine-authority network.
func ExampleRunE() {
	res, err := partialtor.RunE(context.Background(), partialtor.Scenario{
		Protocol:     partialtor.ICPS,
		Relays:       150, // scaled down from 8000 so the example runs in milliseconds
		EntryPadding: 0,
		Seed:         4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("success:", res.Success)
	fmt.Println("votes aggregated:", res.Consensus().NumVotes)
	// Output:
	// success: true
	// votes aggregated: 9
}

// ExampleNewExperiment chains the pipeline declaratively: two hourly
// consensus periods of the current Tor protocol, folded into the client
// availability model (Generate → Avail).
func ExampleNewExperiment() {
	exp, err := partialtor.NewExperiment(
		partialtor.WithScenario(partialtor.Scenario{
			Protocol:     partialtor.Current,
			Relays:       150,
			EntryPadding: 0,
			Round:        15 * time.Second,
			Seed:         4,
		}),
		partialtor.WithPeriods(2),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("phases:", exp.Phases())
	res, err := exp.Run(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Printf("successes: %d/%d\n", res.Successes, exp.Periods())
	// Output:
	// phases: [generate avail]
	// successes: 2/2
}

// ExampleSweepGrid shows the grid engine every sweep in this repository
// runs on: named axes spanning a cartesian grid, evaluated cell by cell
// with results in deterministic rank order.
func ExampleSweepGrid() {
	grid := partialtor.MustNewSweepGrid(
		partialtor.SweepInts("caches", 10, 20),
		partialtor.SweepFloats("residual", 0, 0.5e6),
	)
	results := partialtor.RunSweep(grid, 1, func(c partialtor.SweepCell) (string, error) {
		return fmt.Sprintf("%d caches at %.1f Mbit/s", c.Int("caches"), c.Float("residual")/1e6), nil
	})
	for _, r := range results {
		fmt.Println(r.Value)
	}
	// Output:
	// 10 caches at 0.0 Mbit/s
	// 10 caches at 0.5 Mbit/s
	// 20 caches at 0.0 Mbit/s
	// 20 caches at 0.5 Mbit/s
}
