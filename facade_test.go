package partialtor_test

import (
	"math"
	"testing"
	"time"

	"partialtor"
	"partialtor/internal/core"
	"partialtor/internal/dirv3"
)

// These tests exercise the public facade end to end: a downstream user
// should be able to reproduce the paper's headline claims with nothing but
// the root package.

func TestFacadeHealthyRunsAllProtocols(t *testing.T) {
	for _, proto := range []partialtor.Protocol{
		partialtor.Current, partialtor.Synchronous, partialtor.ICPS,
	} {
		res := partialtor.Run(partialtor.Scenario{
			Protocol:     proto,
			Relays:       150,
			EntryPadding: 0,
			Round:        20 * time.Second,
			Seed:         4,
		})
		if !res.Success {
			t.Fatalf("%v failed on a healthy network", proto)
		}
		if res.Latency <= 0 || res.Latency == partialtor.Never {
			t.Fatalf("%v latency %v", proto, res.Latency)
		}
	}
}

func TestFacadeHeadlineAttack(t *testing.T) {
	// Five minutes of DDoS on the majority: the current protocol loses the
	// period, ours recovers within seconds of the attack ending. (Scaled
	// to one minute / small documents; full scale in cmd/benchtables.)
	plan := partialtor.FiveMinuteOutage(partialtor.MajorityTargets(9))
	plan.End = time.Minute

	cur := partialtor.Run(partialtor.Scenario{
		Protocol:     partialtor.Current,
		Relays:       200,
		EntryPadding: 0,
		Round:        15 * time.Second,
		Attack:       &plan,
		Seed:         4,
	})
	if cur.Success {
		t.Fatal("current protocol survived the outage")
	}
	if _, ok := cur.Detail.(*dirv3.Result); !ok {
		t.Fatalf("detail type %T", cur.Detail)
	}

	ours := partialtor.Run(partialtor.Scenario{
		Protocol:     partialtor.ICPS,
		Relays:       200,
		EntryPadding: 0,
		Attack:       &plan,
		Seed:         4,
	})
	if !ours.Success {
		t.Fatal("ICPS failed to recover from the outage")
	}
	recovery := ours.DoneAt - plan.End
	if recovery < 0 || recovery > 30*time.Second {
		t.Fatalf("recovery %v, want within seconds of the attack end", recovery)
	}
	if _, ok := ours.Detail.(*core.Result); !ok {
		t.Fatalf("detail type %T", ours.Detail)
	}
}

func TestFacadeCostModel(t *testing.T) {
	m := partialtor.DefaultCostModel()
	if math.Abs(m.CostPerMonth(5, 5*time.Minute)-53.28) > 0.01 {
		t.Fatalf("monthly cost %.2f", m.CostPerMonth(5, 5*time.Minute))
	}
	if got := partialtor.CostTable().CostPerInstance; math.Abs(got-0.074) > 0.0005 {
		t.Fatalf("instance cost %.4f", got)
	}
}

func TestFacadeHelpers(t *testing.T) {
	names := partialtor.AuthorityNames()
	if len(names) != 9 || names[0] != "moria1" {
		t.Fatalf("authority names %v", names)
	}
	// The returned slice is a copy; mutating it must not leak.
	names[0] = "mallory"
	if partialtor.AuthorityNames()[0] != "moria1" {
		t.Fatal("AuthorityNames leaks internal state")
	}
	if got := partialtor.MajorityTargets(9); len(got) != 5 {
		t.Fatalf("targets %v", got)
	}
	if partialtor.Seconds(1500*time.Millisecond) != 1.5 {
		t.Fatal("Seconds helper wrong")
	}
	if partialtor.FallbackLatency != 2100*time.Second {
		t.Fatal("fallback latency constant wrong")
	}
	if partialtor.ResidualUnderDDoS != 0.5e6 {
		t.Fatal("residual constant wrong")
	}
}

func TestFacadeFigure6(t *testing.T) {
	f := partialtor.Figure6()
	if math.Abs(f.Average-7141.79) > 0.05 {
		t.Fatalf("average %.2f", f.Average)
	}
}
